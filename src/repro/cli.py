"""``hdpsr`` command-line interface.

Subcommands:

* ``hdpsr repair``  — single-disk recovery comparison (FSR vs HD-PSR-*);
* ``hdpsr multi``   — multi-disk recovery, naive vs cooperative;
* ``hdpsr faults``  — generate a reproducible fault-injection spec (JSON);
* ``hdpsr observe`` — print the Observation 1-3 tables (Figures 3-4);
* ``hdpsr trace``   — analyze captured traces: summarize / blame / diff;
* ``hdpsr serve``   — run the asyncio repair service daemon;
* ``hdpsr client``  — drive a repair-under-load workload against it;
* ``hdpsr top``     — live repair/latency view of a running daemon, or an
  aggregated cluster view with repeated ``--endpoint`` flags;
* ``hdpsr chaos``   — kill-the-owner cluster chaos scenario (two daemons,
  shared store, lease failover + journal handoff, invariant checks);
* ``hdpsr version`` — print the package version.

Every stochastic element is seeded via ``--seed`` for reproducible output.

``repair`` and ``multi`` accept ``--faults spec.json`` plus read-hardening
knobs (``--read-timeout``, ``--retries``, ``--hedge``); with any of those
the command runs the byte-exact data path under injected faults and its
exit code reports the outcome: 0 = clean recovery, 0 with a warning when
re-planning was needed, 3 when data was lost.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro.core import (
    ALGORITHMS,
    cooperative_multi_disk_repair,
    naive_multi_disk_repair,
    repair_single_disk,
)
from repro.core.analysis import acwt_curve_vs_pa, observation1_table, rounds_curve_vs_pr
from repro.utils.tables import AsciiTable
from repro.utils.units import format_bytes, format_duration
from repro.version import __version__
from repro.workloads import build_exp_server, normal_transfer_times


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="capture a structured trace: .json = Chrome trace_event "
             "(chrome://tracing, Perfetto), .jsonl = one event per line")
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="dump the metrics registry in Prometheus text format")


def _observed(fn):
    """Wrap a subcommand so --trace/--metrics capture its execution."""

    def run(args: argparse.Namespace) -> int:
        trace_path = getattr(args, "trace", None)
        metrics_path = getattr(args, "metrics", None)
        if not trace_path and not metrics_path:
            return fn(args)
        from repro.obs import (
            MetricsRegistry,
            RecordingTracer,
            use_registry,
            use_tracer,
            write_chrome_trace,
            write_jsonl,
            write_prometheus,
        )

        tracer = RecordingTracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            rc = fn(args)
        if trace_path:
            if str(trace_path).endswith(".jsonl"):
                path = write_jsonl(tracer, trace_path)
            else:
                path = write_chrome_trace(tracer, trace_path)
            print(f"trace written: {path} ({len(tracer.events)} events)")
        if metrics_path:
            path = write_prometheus(registry, metrics_path)
            print(f"metrics written: {path}")
        return rc

    return run


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="SPEC.json",
        help="inject faults from this schedule (see `hdpsr faults`); runs "
             "the byte-exact data path and reports per-stripe outcomes")
    parser.add_argument(
        "--read-timeout", type=float, default=None, metavar="SECONDS",
        help="abandon + retry survivor reads slower than this (modeled time)")
    parser.add_argument(
        "--retries", type=int, default=3,
        help="retry budget per read before hedging/forcing (default 3)")
    parser.add_argument(
        "--hedge", action="store_true",
        help="after retries, re-plan the read onto a different survivor")
    parser.add_argument(
        "--journal", default=None, metavar="DIR",
        help="checkpoint the repair into a crash-consistent journal at DIR "
             "(with --algorithm all, each scheme journals to DIR/<scheme>); "
             "implies the byte-exact hardened data path")
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted repair from --journal DIR: the journaled "
             "plan is reused verbatim, finished stripes are replayed without "
             "re-reading, and the in-flight stripe continues mid-round")


def _fault_setup(args: argparse.Namespace):
    """Parse --faults/--read-timeout/--retries/--hedge into (schedule, policy).

    Returns ``(None, None)`` when no hardening was requested — callers use
    that to keep the plain timing-comparison behavior.
    """
    from repro.core import ReadPolicy
    from repro.faults import FaultSchedule

    schedule = None
    if args.faults:
        schedule = FaultSchedule.from_json(args.faults)
    policy = None
    if args.read_timeout is not None or args.hedge:
        policy = ReadPolicy(
            timeout_seconds=args.read_timeout,
            max_retries=args.retries,
            hedge=args.hedge,
        )
    return schedule, policy


def _loss_table(name: str, result) -> "AsciiTable":
    """Per-stripe outcome table for one hardened recovery."""
    loss = result.loss
    table = AsciiTable(
        ["metric", "value"],
        title=f"{name}: fault-hardened recovery outcomes",
    )
    table.add_row(["stripes", len(loss.stripes)])
    table.add_row(["recovered", len(loss.recovered)])
    table.add_row(["recovered after replan", len(loss.replanned)])
    table.add_row(["lost", len(loss.lost)])
    for kind, count in sorted(loss.faults_injected.items()):
        table.add_row([f"faults injected ({kind})", count])
    table.add_row(["read timeouts", loss.timeouts])
    table.add_row(["read retries", loss.retries])
    table.add_row(["hedged reads", loss.hedged_reads])
    table.add_row(["salvage replans", loss.replans])
    table.add_row(["fresh restarts", loss.fresh_restarts])
    table.add_row(["chunks salvaged", loss.salvaged_chunks])
    table.add_row(["chunks re-read", loss.reread_chunks])
    table.add_row(["checksum failures", loss.checksum_failures])
    if loss.resumed_stripes:
        table.add_row(["stripes replayed from journal", loss.resumed_stripes])
        table.add_row(["chunks re-put from journal", loss.replayed_chunks])
    table.add_row(["chunks rebuilt", result.data_path.chunks_rebuilt])
    table.add_row(["modeled seconds", format_duration(result.data_path.modeled_seconds)])
    table.add_row(["certified", result.certified])
    return table


def _report_hardened(name: str, result) -> int:
    """Print one hardened recovery's outcome; return its exit code."""
    print(_loss_table(name, result).render())
    loss = result.loss
    if loss.has_loss:
        print(f"DATA LOSS: {len(loss.lost)} stripe(s) unrecoverable: "
              f"{loss.lost[:8]}{'...' if len(loss.lost) > 8 else ''}",
              file=sys.stderr)
    elif loss.degraded:
        print(f"warning: recovery degraded — {len(loss.replanned)} stripe(s) "
              f"re-planned, {loss.fresh_restarts} restart(s)", file=sys.stderr)
    return loss.exit_code


def _journal_dir(args: argparse.Namespace, algorithm: str) -> "Optional[str]":
    """Resolve --journal for one scheme: DIR, or DIR/<scheme> under `all`.

    Per-scheme subdirectories keep `--algorithm all` runs from interleaving
    unrelated repairs in one journal (a journal records exactly one repair).
    """
    if not args.journal:
        return None
    if args.algorithm == "all":
        import os

        return os.path.join(args.journal, algorithm)
    return args.journal


def _report_crash(name: str, crash, journal: "Optional[str]") -> None:
    print(f"{name}: {crash}", file=sys.stderr)
    if journal:
        print(f"repair interrupted; resume with: --journal {journal} --resume",
              file=sys.stderr)


def _add_server_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=9, help="total shards per stripe")
    parser.add_argument("--k", type=int, default=6, help="data shards per stripe")
    parser.add_argument("--disk-size", default="1GiB", help="data on each failed disk")
    parser.add_argument("--chunk-size", default="64MiB", help="chunk size")
    parser.add_argument("--num-disks", type=int, default=36, help="disks in the chassis")
    parser.add_argument("--memory", type=int, default=None,
                        help="repair memory capacity c in chunks (default 2k)")
    parser.add_argument("--ros", type=float, default=0.1, help="slow-disk ratio")
    parser.add_argument("--slow-factor", type=float, default=4.0,
                        help="slow disks run this many times slower")
    parser.add_argument("--placement", choices=["rotating", "random"], default="random")
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")


def _build_server(args: argparse.Namespace, with_data: bool = False):
    return build_exp_server(
        n=args.n, k=args.k, disk_size=args.disk_size, chunk_size=args.chunk_size,
        num_disks=args.num_disks, memory_chunks=args.memory,
        ros=args.ros, slow_factor=args.slow_factor, seed=args.seed,
        placement=args.placement, with_data=with_data,
    )


def cmd_repair(args: argparse.Namespace) -> int:
    from pathlib import Path

    algos = list(ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    schedule, policy = _fault_setup(args)
    if args.resume and not args.journal:
        print("--resume needs --journal DIR (the journal to resume from)",
              file=sys.stderr)
        return 2
    if schedule is not None or policy is not None or args.journal:
        from repro.core import recover_disk
        from repro.errors import JournalError
        from repro.faults import EXIT_CRASHED, SimulatedCrash

        rc = 0
        for name in algos:
            journal = _journal_dir(args, name)
            server = _build_server(args, with_data=True)
            server.fail_disk(args.disk)
            try:
                result = recover_disk(
                    server, ALGORITHMS[name](), args.disk,
                    faults=schedule, policy=policy,
                    journal=journal, resume=args.resume,
                )
            except SimulatedCrash as crash:
                _report_crash(name, crash, journal)
                return EXIT_CRASHED
            except JournalError as exc:
                print(f"{name}: {exc}", file=sys.stderr)
                return 2
            rc = max(rc, _report_hardened(name, result))
        return rc
    table = AsciiTable(
        ["scheme", "repair time", "vs FSR", "ACWT", "P_a", "P_r", "selection"],
        title=(f"Single-disk recovery: RS({args.n},{args.k}), "
               f"{args.disk_size}/disk, chunk {args.chunk_size}, "
               f"ROS {args.ros:.0%}, seed {args.seed}"),
    )
    baseline: Optional[float] = None
    for name in algos:
        server = _build_server(args)
        server.fail_disk(args.disk)
        out = repair_single_disk(server, ALGORITHMS[name](), args.disk)
        if baseline is None:
            baseline = out.transfer_time
        delta = (1 - out.transfer_time / baseline) * 100
        table.add_row([
            name,
            format_duration(out.transfer_time),
            "baseline" if name == algos[0] else f"{-delta:+.1f}%".replace("+-", "-"),
            f"{out.acwt:.3f} s",
            out.plan.pa if out.plan.pa is not None else "per-stripe",
            out.plan.pr if out.plan.pr is not None else "auto",
            format_duration(out.selection_seconds),
        ])
        if args.timeline:
            path = Path(args.timeline)
            target = path.with_name(f"{path.stem}-{name}{path.suffix or '.csv'}")
            out.report.to_csv(target)
            print(f"timeline written: {target}")
    print(table.render())
    return 0


def cmd_multi(args: argparse.Namespace) -> int:
    schedule, policy = _fault_setup(args)
    if args.resume and not args.journal:
        print("--resume needs --journal DIR (the journal to resume from)",
              file=sys.stderr)
        return 2
    if schedule is not None or policy is not None or args.journal:
        from repro.core import recover_disks
        from repro.errors import JournalError
        from repro.faults import EXIT_CRASHED, SimulatedCrash

        algos = list(ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
        failed = list(range(args.failed))
        rc = 0
        for name in algos:
            journal = _journal_dir(args, name)
            server = _build_server(args, with_data=True)
            for d in failed:
                server.fail_disk(d)
            try:
                result = recover_disks(
                    server, ALGORITHMS[name](), failed,
                    faults=schedule, policy=policy,
                    journal=journal, resume=args.resume,
                )
            except SimulatedCrash as crash:
                _report_crash(f"{name} (cooperative)", crash, journal)
                return EXIT_CRASHED
            except JournalError as exc:
                print(f"{name}: {exc}", file=sys.stderr)
                return 2
            rc = max(rc, _report_hardened(f"{name} (cooperative)", result))
        return rc
    table = AsciiTable(
        ["algorithm", "mode", "repair time", "chunks read", "data read"],
        title=(f"Multi-disk recovery: {args.failed} failed disk(s), "
               f"RS({args.n},{args.k}), {args.disk_size}/disk, seed {args.seed}"),
    )
    algos = list(ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    failed = list(range(args.failed))
    for name in algos:
        for cooperative in (False, True):
            server = _build_server(args)
            for d in failed:
                server.fail_disk(d)
            repair = cooperative_multi_disk_repair if cooperative else naive_multi_disk_repair
            out = repair(server, ALGORITHMS[name], failed)
            table.add_row([
                name,
                "cooperative" if cooperative else "naive",
                format_duration(out.total_time),
                out.chunks_read,
                format_bytes(out.chunks_read * server.config.chunk_size),
            ])
    print(table.render())
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import json

    from repro.faults import FAULT_KINDS, generate_fault_schedule

    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    bad = [k for k in kinds if k not in FAULT_KINDS]
    if bad:
        print(f"unknown fault kind(s) {bad}; choose from {sorted(FAULT_KINDS)}",
              file=sys.stderr)
        return 2
    schedule = generate_fault_schedule(
        seed=args.seed,
        num_events=args.events,
        horizon=args.horizon,
        num_disks=args.num_disks,
        num_stripes=args.stripes,
        num_shards=args.shards,
        kinds=kinds,
        max_disk_fails=args.max_disk_fails,
    )
    if args.output:
        path = schedule.to_json(args.output)
        print(f"fault spec written: {path} ({len(schedule.events)} events)")
    else:
        print(json.dumps(schedule.to_spec(), indent=2))
    return 0


def cmd_observe(args: argparse.Namespace) -> int:
    s, k, c = args.stripes, args.k, args.memory or args.k * 2

    t1 = AsciiTable(["P_a", "P_r"], title=f"Observation 1: P_a vs P_r (c={c})")
    for pa, pr in observation1_table(c):
        t1.add_row([pa, pr])
    print(t1.render())
    print()

    ros_grid = [0.02, 0.05, 0.08, 0.10]
    curves = {
        ros: acwt_curve_vs_pa(
            normal_transfer_times(s, k, ros=ros, seed=args.seed).L, c
        )
        for ros in ros_grid
    }
    t2 = AsciiTable(
        ["P_a"] + [f"ROS={r:.0%}" for r in ros_grid],
        title=f"Observation 2: ACWT vs P_a (s={s}, k={k}, c={c})",
        float_fmt=".4f",
    )
    for pa in range(1, k + 1):
        t2.add_row([pa] + [curves[r][pa] for r in ros_grid])
    print(t2.render())
    print()

    t3 = AsciiTable(["P_r", "TR"], title=f"Observation 3: TR vs P_r (k={k}, c={c})")
    for pr, tr in rounds_curve_vs_pr(k, c).items():
        t3.add_row([pr, tr])
    print(t3.render())
    return 0


def cmd_durability(args: argparse.Namespace) -> int:
    from repro.reliability import (
        ExponentialLifetime,
        WeibullLifetime,
        estimate_repair_seconds,
        simulate_durability,
    )
    from repro.reliability.lifetimes import YEAR_SECONDS

    if args.weibull_shape is not None:
        lifetime = WeibullLifetime(
            scale_seconds=YEAR_SECONDS / args.afr, shape=args.weibull_shape
        )
    else:
        lifetime = ExponentialLifetime(afr=args.afr)
    table = AsciiTable(
        ["scheme", "repair time", "window", "P(loss)", "95% CI", "MTTDL (y)"],
        title=(f"Durability: RS({args.n},{args.k}), {args.num_disks} disks, "
               f"{lifetime.describe()}, mission {args.mission_years:.0f}y, "
               f"{args.trials} trials"),
    )
    algos = list(ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    for name in algos:
        server = _build_server(args)
        repair = estimate_repair_seconds(server, ALGORITHMS[name](), disk=0)
        window = repair * args.amplify
        result = simulate_durability(
            server.layout, num_disks=args.num_disks, lifetime=lifetime,
            repair_seconds=window, mission_years=args.mission_years,
            trials=args.trials, seed=args.seed,
        )
        mttdl = "inf" if result.mttdl_years == float("inf") else f"{result.mttdl_years:.0f}"
        low, high = result.ci95
        table.add_row([
            name, format_duration(repair), format_duration(window),
            f"{result.loss_probability:.4f}", f"[{low:.4f}, {high:.4f}]", mttdl,
        ])
    print(table.render())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.experiment import run_sweep, save_rows

    spec_path = Path(args.spec)
    if not spec_path.exists():
        print(f"spec file {spec_path} does not exist", file=sys.stderr)
        return 1
    try:
        data = json.loads(spec_path.read_text())
    except json.JSONDecodeError as exc:
        print(f"spec file is not valid JSON: {exc}", file=sys.stderr)
        return 1
    rows = run_sweep(data)
    table = AsciiTable(
        ["experiment", "algorithm", "total time", "ACWT", "chunks read", "selection"],
        title=f"Experiment spec {data.get('name', spec_path.stem)!r}",
    )
    for row in rows:
        table.add_row([
            row["experiment"],
            row["algorithm"],
            format_duration(row["total_time"]),
            f"{row['acwt']:.3f} s",
            int(row["chunks_read"]),
            format_duration(row["selection_seconds"]),
        ])
    print(table.render())
    if args.output:
        path = save_rows(rows, args.output)
        print(f"wrote {path}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.reporting import extract_preamble, render_report, write_report

    results = Path(args.results)
    if not results.exists():
        print(f"results directory {results} does not exist; "
              f"run `pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 1
    if args.output:
        # keep any hand-written preamble already in the output file
        path = write_report(results, args.output,
                            preamble=extract_preamble(Path(args.output)))
        print(f"wrote {path}")
    else:
        print(render_report(results))
    return 0


def _load_trace_analysis(path: str):
    """Read a JSONL trace and analyze it; raises ValueError on bad input."""
    from pathlib import Path

    from repro.obs import analyze_trace, read_jsonl

    p = Path(path)
    if not p.exists():
        raise ValueError(f"trace file {p} does not exist")
    if p.suffix != ".jsonl":
        raise ValueError(
            f"{p} is not a .jsonl trace; capture one with --trace file.jsonl "
            f"(the .json Chrome format is for chrome://tracing, not analysis)"
        )
    return analyze_trace(read_jsonl(p))


def _blame_table(analysis, top: Optional[int] = None) -> "AsciiTable":
    table = AsciiTable(
        ["disk", "reads", "busy", "util", "critical rounds",
         "induced wait", "blame share"],
        title="Bottleneck attribution (which disk stalled each round)",
    )
    blames = sorted(
        analysis.disks.values(),
        key=lambda b: (-b.induced_wait_seconds, -b.critical_rounds, str(b.disk)),
    )
    if top is not None:
        blames = blames[:top]
    for b in blames:
        table.add_row([
            "?" if b.disk is None else b.disk,
            b.reads,
            format_duration(b.busy_seconds),
            f"{b.utilization:.1%}",
            b.critical_rounds,
            format_duration(b.induced_wait_seconds),
            f"{b.blame_share:.1%}",
        ])
    return table


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import summarize_trace

    try:
        analysis = _load_trace_analysis(args.file)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    summary = summarize_trace(analysis)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        overview = AsciiTable(["metric", "value"],
                              title=f"Trace summary: {args.file}")
        overview.add_row(["events", analysis.events])
        overview.add_row(["stripes", analysis.stripes])
        overview.add_row(["rounds", len(analysis.rounds)])
        overview.add_row(["reads", analysis.reads])
        overview.add_row(["makespan", format_duration(analysis.makespan)])
        overview.add_row(["round duration mean",
                          format_duration(summary["rounds"]["duration_mean_seconds"])])
        overview.add_row(["round duration max",
                          format_duration(summary["rounds"]["duration_max_seconds"])])
        overview.add_row(["chunks per round", f"{summary['rounds']['chunks_mean']:.2f}"])
        overview.add_row(["ACWT", f"{analysis.acwt:.4f} s"])
        overview.add_row(["total chunk wait",
                          format_duration(analysis.total_wait_seconds)])
        for name, value in sorted(analysis.resource_waits.items()):
            overview.add_row([f"{name} wait", format_duration(value)])
        if analysis.memory is not None:
            overview.add_row(["memory peak", f"{analysis.memory.peak_slots} slots"])
            overview.add_row(["memory mean", f"{analysis.memory.mean_slots:.2f} slots"])
            overview.add_row(["memory slot-seconds",
                              f"{analysis.memory.slot_seconds:.3f}"])
        print(overview.render())
        print()
        print(_blame_table(analysis).render())
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"summary written: {path}")
    return 0


def cmd_trace_blame(args: argparse.Namespace) -> int:
    try:
        analysis = _load_trace_analysis(args.file)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(_blame_table(analysis, top=args.top).render())
    return 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs import diff_metrics, load_run_metrics

    try:
        old = load_run_metrics(args.old)
        new = load_run_metrics(args.new)
    except (ValueError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 2
    result = diff_metrics(old, new, threshold=args.threshold, only=args.only)
    if args.json:
        print(json.dumps(
            {
                "threshold": args.threshold,
                "regressions": [e.key for e in result.regressions],
                "improvements": [e.key for e in result.improvements],
                "entries": [
                    {"key": e.key, "old": e.old, "new": e.new,
                     "rel": e.rel, "direction": e.direction,
                     "regressed": e.regressed, "improved": e.improved}
                    for e in result.entries
                ],
                "missing": result.missing,
                "extra": result.extra,
            },
            indent=2,
        ))
        return 1 if result.regressions else 0
    shown = result.entries if args.all else result.changed
    table = AsciiTable(
        ["metric", "old", "new", "delta", "verdict"],
        title=f"Run diff: {args.old} -> {args.new} "
              f"(threshold {args.threshold:.0%})",
        float_fmt=".6g",
    )
    for e in shown:
        if e.rel is None:
            delta = "-"
        elif e.rel in (float("inf"), float("-inf")):
            delta = "new!=0" if e.rel > 0 else "now 0"
        else:
            delta = f"{e.rel:+.1%}"
        verdict = ("REGRESSED" if e.regressed
                   else "improved" if e.improved
                   else "")
        table.add_row([e.key, e.old, e.new, delta, verdict])
    if shown:
        print(table.render())
    else:
        print(f"no changed metrics ({len(result.entries)} compared)")
    if result.missing:
        print(f"missing from new run: {len(result.missing)} metric(s)")
    if result.extra:
        print(f"only in new run: {len(result.extra)} metric(s)")
    if result.regressions:
        print(f"{len(result.regressions)} regression(s) past "
              f"{args.threshold:.0%}: "
              + ", ".join(e.key for e in result.regressions[:8])
              + ("..." if len(result.regressions) > 8 else ""))
        return 1
    print("no regressions")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the asyncio repair service daemon (``hdpsr serve``)."""
    import asyncio

    from repro.hdss.store import ShardedChunkStore
    from repro.obs import EventLoopMonitor
    from repro.service import RepairService, ServiceConfig, ServiceDaemon
    from repro.service.telemetry import TelemetryServer

    schedule, policy = _fault_setup(args)
    chaos = None
    if schedule is not None:
        from repro.faults import ServiceFaultInjector, is_service_schedule

        if is_service_schedule(schedule):
            # A cluster spec mixes data-path and wire faults; each daemon
            # keeps its own slice (daemon_crash becomes a local
            # process_crash, conn-level kinds feed the wire injector).
            schedule, wire = schedule.for_daemon(args.daemon_index)
            if not len(schedule.events):
                schedule = None
            if len(wire.events):
                chaos = ServiceFaultInjector(wire, daemon=args.daemon_index)
    store = None
    if args.store:
        store = ShardedChunkStore.from_root(
            args.store, num_shards=args.shards, durable=not args.no_fsync
        )
    # A daemon joining an existing cluster must not re-write provisioned
    # data into the shared store (it would resurrect chunks a peer already
    # failed): --attach provisions into a throwaway in-memory store and
    # then fronts the shared one. Same seed => identical layout and spares.
    server = build_exp_server(
        n=args.n, k=args.k, disk_size=args.disk_size, chunk_size=args.chunk_size,
        num_disks=args.num_disks, memory_chunks=args.memory,
        ros=args.ros, slow_factor=args.slow_factor, seed=args.seed,
        placement=args.placement, with_data=True,
        store=None if (args.attach and store is not None) else store,
    )
    if args.attach and store is not None:
        server.store = store
    overload = None
    if not args.no_overload_control:
        from repro.service import OverloadConfig

        overload = OverloadConfig(
            target_ms=args.overload_target_ms,
            shed_target_ms=args.overload_shed_target_ms,
            interval_ms=args.overload_interval_ms,
        )
    config = ServiceConfig(
        max_concurrent_stripes=args.max_stripes,
        per_disk_reads=args.per_disk_reads,
        policy=policy,
        journal_root=args.journal,
        durable_journal=not args.no_fsync,
        overload=overload,
    )
    telemetry = None
    if args.metrics_port is not None or args.metrics_port_file:
        telemetry = TelemetryServer(
            host=args.host,
            port=args.metrics_port or 0,
            port_file=args.metrics_port_file,
        )

    cluster = None
    if args.cluster_dir:
        from repro.service import ClusterConfig, ClusterNode

        cluster = ClusterNode(ClusterConfig(
            root=args.cluster_dir,
            node_id=args.node_id or f"node-{os.getpid()}",
            num_shards=args.cluster_shards,
            lease_ttl=args.lease_ttl,
            heartbeat_interval=args.heartbeat_interval,
            durable=not args.no_fsync,
        ))

    async def run() -> int:
        from pathlib import Path

        service = RepairService(
            server, ALGORITHMS[args.algorithm](), config, faults=schedule
        )
        scrubber = None
        if args.scrub:
            from repro.service.scrub import ScrubConfig, Scrubber

            scrub_journal = args.scrub_journal
            if scrub_journal is None and args.journal:
                scrub_journal = Path(args.journal) / "scrub-cursor"
            scrubber = Scrubber(service, ScrubConfig(
                interval_ms=args.scrub_interval_ms,
                cycle_pause_s=args.scrub_cycle_pause,
                journal_root=scrub_journal,
                durable_journal=not args.no_fsync,
                auto_repair=not args.scrub_no_repair,
            ))
        daemon = ServiceDaemon(
            service, host=args.host, port=args.port, port_file=args.port_file,
            telemetry=telemetry, monitor=EventLoopMonitor(),
            cluster=cluster, chaos=chaos, max_inflight=args.max_inflight,
            scrubber=scrubber,
        )
        port = await daemon.start()
        print(f"hdpsr service listening on {args.host}:{port} "
              f"({len(server.layout)} stripes, store "
              f"{'sharded x' + str(args.shards) if store else 'in-memory'})",
              flush=True)
        if scrubber is not None:
            print(f"scrub plane on: every chunk verified each cycle "
                  f"(interval {args.scrub_interval_ms} ms, cursor "
                  f"{scrubber.config.journal_root or 'in-memory'}, "
                  f"{'repairing' if scrubber.config.auto_repair else 'detect-only'}"
                  f"{', resuming cycle ' + str(scrubber.cycle) if scrubber._begun else ''})",
                  flush=True)
        if cluster is not None:
            print(f"cluster node {cluster.node_id} joining at "
                  f"{args.cluster_dir} ({args.cluster_shards} shards, "
                  f"lease ttl {args.lease_ttl}s)", flush=True)
        if telemetry is not None:
            tport = await telemetry.start()
            print(f"telemetry on http://{args.host}:{tport} "
                  "(/metrics, /healthz)", flush=True)
        rc = await daemon.serve_until_stopped()
        if daemon.crashed is not None:
            print(f"service crashed: {daemon.crashed}", file=sys.stderr)
            if args.journal:
                print(f"repairs are journaled under {args.journal}; restart "
                      "the service and resubmit with --resume",
                      file=sys.stderr)
        return rc

    return asyncio.run(run())


def _resolve_port(args: argparse.Namespace) -> Optional[int]:
    """Resolve the daemon port from ``--port`` or (waiting on) ``--port-file``."""
    import time as _time
    from pathlib import Path

    if args.port is not None:
        return int(args.port)
    if not args.port_file:
        print(f"{args.command} needs --port or --port-file", file=sys.stderr)
        return None
    deadline = _time.monotonic() + args.connect_timeout
    path = Path(args.port_file)
    while True:
        if path.exists() and path.read_text().strip():
            return int(path.read_text().strip())
        if _time.monotonic() > deadline:
            print(f"timed out waiting for port file {path}", file=sys.stderr)
            return None
        _time.sleep(0.05)


def _client_open_loop(args: argparse.Namespace, port: int) -> int:
    """``hdpsr client --shape ...``: open-loop load at a traffic shape."""
    import asyncio
    import json

    from repro.service import run_open_loop

    report = asyncio.run(run_open_loop(
        args.host, port,
        shape=args.shape, rate=args.rate, duration=args.duration,
        seed=args.seed, deadline_ms=args.deadline_ms,
        disks=tuple(args.fail or ()), connections=args.connections,
        shutdown=args.shutdown,
    ))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return int(report["exit_code"])
    errors = report["errors"]
    print(f"open loop [{args.shape}]: offered {report['offered']} reads "
          f"@ {report['offered_rate']:.1f}/s over "
          f"{report['elapsed_seconds']:.2f}s")
    print(f"completed {report['completed']} "
          f"({report['goodput_per_s']:.1f}/s goodput)  "
          f"p50 {report['read_p50_seconds'] * 1e3:.2f} ms  "
          f"p99 {report['read_p99_seconds'] * 1e3:.2f} ms"
          + (f"  (deadline {args.deadline_ms:.0f} ms)"
             if args.deadline_ms else ""))
    if errors:
        detail = "  ".join(f"{code}={n}" for code, n in sorted(errors.items()))
        print(f"shed/errors: {detail}")
    for row in report["repairs"]:
        print(f"repair disk {row.get('disk')}: "
              f"{row.get('stripes_repaired')} stripes, "
              f"certified={row.get('certified')}")
    return int(report["exit_code"])


def cmd_client(args: argparse.Namespace) -> int:
    """Drive a repair-under-load workload against ``hdpsr serve``."""
    import asyncio
    import json

    from repro.service import run_workload

    port = _resolve_port(args)
    if port is None:
        return 2
    if args.shape:
        return _client_open_loop(args, port)
    disks = args.fail if args.fail else [0]
    report = asyncio.run(run_workload(
        args.host, port,
        disks=disks, reads=args.reads, read_concurrency=args.read_concurrency,
        seed=args.seed, resume=args.resume, shutdown=args.shutdown,
    ))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    elif report.get("crashed"):
        print("service crashed mid-workload; restart `hdpsr serve` and rerun "
              "the client with --resume", file=sys.stderr)
    else:
        table = AsciiTable(
            ["disk", "stripes", "lost", "chunks", "modeled s", "wall s", "certified"],
            title="service repairs",
        )
        for row in report["repairs"]:
            table.add_row([
                row["disk"], row["stripes"], row["stripes_lost"],
                row["chunks_rebuilt"], f"{row['modeled_seconds']:.4g}",
                f"{row['wall_seconds']:.3f}", row["certified"],
            ])
        print(table.render())
        print(f"foreground reads: {report['reads']}  "
              f"p50 {report['read_p50_seconds'] * 1e3:.2f} ms  "
              f"p99 {report['read_p99_seconds'] * 1e3:.2f} ms")
        print(f"trace id: {report['trace_id']} (grep the daemon's --trace "
              "export for the server-side spans)")
        if report["read_errors"]:
            print(f"read errors: {len(report['read_errors'])} "
                  f"(first: {report['read_errors'][0]})", file=sys.stderr)
    return int(report["exit_code"])


def _render_top(stats: dict) -> str:
    """One ``hdpsr top`` frame from a daemon ``stats`` snapshot."""
    lines: List[str] = []
    jobs = stats.get("jobs", [])
    if jobs:
        table = AsciiTable(
            ["job", "disk", "algorithm", "stripes", "%", "eta s",
             "replans", "cksum", "state"],
            title="repair jobs",
        )
        for job in jobs:
            total = job.get("stripes_total", 0)
            done = job.get("stripes_done", 0)
            pct = f"{100.0 * done / total:.1f}" if total else "-"
            eta = job.get("eta_seconds")
            table.add_row([
                job.get("job_id"), job.get("disk"), job.get("algorithm"),
                f"{done}/{total}", pct,
                "-" if eta is None else f"{eta:.1f}",
                job.get("replans", 0), job.get("checksum_failures", 0),
                "done" if job.get("done") else "running",
            ])
        lines.append(table.render())
    else:
        lines.append("no repair jobs submitted yet")
    foreground = stats.get("foreground", {})
    if foreground:
        table = AsciiTable(
            ["path", "reads", "p50 ms", "p99 ms", "p999 ms"],
            title="foreground read latency",
        )
        for path in sorted(foreground):
            entry = foreground[path]

            def ms(key: str) -> str:
                value = entry.get(key)
                return "-" if value is None else f"{value * 1e3:.2f}"

            table.add_row([path, int(entry.get("count", 0)),
                           ms("p50"), ms("p99"), ms("p999")])
        lines.append(table.render())
    gates = stats.get("gates", {})
    busy = {d: g for d, g in gates.items()
            if g.get("inflight") or g.get("waiting_foreground")
            or g.get("waiting_background")}
    if busy:
        table = AsciiTable(
            ["disk", "inflight", "width", "fg waiting", "bg waiting"],
            title="disk gates (active only)",
        )
        for disk in sorted(busy, key=int):
            g = busy[disk]
            table.add_row([disk, g.get("inflight", 0), g.get("width", 0),
                           g.get("waiting_foreground", 0),
                           g.get("waiting_background", 0)])
        lines.append(table.render())
    overload = stats.get("overload")
    if overload:
        line = (f"overload: state={overload.get('state', 'healthy')}  "
                f"sheds/s {overload.get('sheds_per_s', 0.0):.1f} "
                f"(total {int(overload.get('sheds_total', 0))})  "
                f"deadline-expired {int(overload.get('deadline_expired', 0))}  "
                f"retry-after {overload.get('retry_after_ms', 0):.0f} ms")
        browned = overload.get("browned_disks") or []
        if browned:
            line += ("  browned disks: "
                     + ",".join(str(d) for d in browned))
        lines.append(line)
    scrub = stats.get("scrub")
    if scrub:
        state = ("parked" if scrub.get("parked")
                 else "running" if scrub.get("running") else "stopped")
        eta = scrub.get("eta_seconds")
        line = (f"scrub: {state}  cycle {scrub.get('cycle', '?')} "
                f"{100.0 * scrub.get('progress', 0.0):.0f}% "
                f"(disk {scrub.get('disks_done', 0)}/"
                f"{scrub.get('disks_total', 0)}"
                + ("" if eta is None else f", eta {eta:.1f} s") + ")  "
                f"verified {int(scrub.get('chunks_verified', 0))}  "
                f"corrupt {int(scrub.get('corrupt_found', 0))}  "
                f"repaired {int(scrub.get('repaired', 0))}  "
                f"quarantined {int(scrub.get('quarantined', 0))}")
        lines.append(line)
    journal = stats.get("journal", {})
    runtime = stats.get("runtime") or {}
    tail = (f"writer backlog {stats.get('writer_backlog', 0)}  "
            f"chunks enqueued {stats.get('chunks_enqueued', 0)}  "
            f"journal {format_bytes(journal.get('bytes', 0))} "
            f"in {int(journal.get('records', 0))} records")
    if runtime:
        lag = runtime.get("loop_lag_last_seconds", 0.0)
        lag99 = runtime.get("loop_lag_p99_seconds")
        tail += f"  loop lag {lag * 1e3:.2f} ms"
        if lag99 is not None:
            tail += f" (p99 {lag99 * 1e3:.2f} ms)"
    lines.append(tail)
    failed = stats.get("failed", [])
    if failed:
        lines.append(f"failed disks: {', '.join(str(d) for d in failed)}")
    return "\n".join(lines)


def _render_cluster_top(snapshots: "Dict[str, dict]") -> str:
    """The aggregated fleet view for ``hdpsr top --endpoint ...``."""
    lines: List[str] = []
    table = AsciiTable(
        ["endpoint", "node", "ready", "owned shards", "epochs", "handoffs",
         "failovers", "jobs", "state", "sheds/s", "ddl-exp"],
        title="cluster daemons",
    )
    for endpoint in sorted(snapshots):
        snap = snapshots[endpoint]
        if "error" in snap:
            table.add_row([endpoint, "-", "down", "-", "-", "-", "-",
                           snap["error"][:40], "-", "-", "-"])
            continue
        cluster = snap.get("cluster") or {}
        stats = snap.get("stats") or {}
        epochs = cluster.get("epochs") or {}
        jobs = stats.get("jobs", [])
        running = sum(1 for j in jobs if not j.get("done"))
        overload = stats.get("overload") or {}
        table.add_row([
            endpoint,
            cluster.get("node", "-"),
            "yes" if cluster.get("enabled") else "solo",
            ",".join(str(s) for s in cluster.get("owned_shards", [])) or "-",
            ",".join(f"{s}:{e}" for s, e in sorted(epochs.items())) or "-",
            ",".join(str(d) for d in cluster.get("handoffs", [])) or "-",
            cluster.get("failovers", 0),
            f"{running} running / {len(jobs)} total",
            overload.get("state", "-"),
            (f"{overload.get('sheds_per_s', 0.0):.1f}"
             if overload else "-"),
            (str(int(overload.get("deadline_expired", 0)))
             if overload else "-"),
        ])
    lines.append(table.render())
    owners: Dict[str, dict] = {}
    for snap in snapshots.values():
        for shard, lease in ((snap.get("cluster") or {}).get("leases") or {}).items():
            owners.setdefault(str(shard), lease)
    if owners:
        table = AsciiTable(
            ["shard", "owner", "endpoint", "epoch", "expires in s"],
            title="shard leases",
        )
        for shard in sorted(owners, key=int):
            lease = owners[shard]
            table.add_row([shard, lease.get("owner"), lease.get("endpoint"),
                           lease.get("epoch"), lease.get("expires_in")])
        lines.append(table.render())
    return "\n".join(lines)


def _cluster_top(args: argparse.Namespace) -> int:
    """Aggregated multi-daemon ``top`` (repeated ``--endpoint`` flags)."""
    import asyncio
    import json
    import time as _time

    from repro.service import ServiceClient, ServiceError
    from repro.service.client import parse_endpoint

    async def fetch() -> "Dict[str, dict]":
        out: Dict[str, dict] = {}
        for endpoint in args.endpoint:
            host, port = parse_endpoint(endpoint)
            try:
                client = await ServiceClient.connect(host, port)
                try:
                    cluster = await client.cluster()
                    stats = await client.stats()
                finally:
                    await client.close()
                cluster.pop("ok", None)
                stats.pop("ok", None)
                out[endpoint] = {"cluster": cluster, "stats": stats}
            except (ServiceError, OSError) as exc:
                out[endpoint] = {"error": str(exc)}
        return out

    try:
        while True:
            snapshots = asyncio.run(fetch())
            if all("error" in s for s in snapshots.values()):
                print("no daemon reachable at "
                      + ", ".join(sorted(snapshots)), file=sys.stderr)
                return 1
            if args.json:
                print(json.dumps(snapshots, indent=2, sort_keys=True))
            else:
                if not args.once:
                    print("\x1b[2J\x1b[H", end="")
                print(_render_cluster_top(snapshots), flush=True)
            if args.once:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_scrub(args: argparse.Namespace) -> int:
    """Query a running daemon's scrub plane (``hdpsr scrub``)."""
    import asyncio
    import json

    from repro.service import ServiceClient, ServiceError

    port = _resolve_port(args)
    if port is None:
        return 2

    async def fetch() -> dict:
        client = await ServiceClient.connect(args.host, port)
        try:
            return await client.scrub()
        finally:
            await client.close()

    try:
        status = asyncio.run(fetch())
    except (ServiceError, OSError) as exc:
        print(f"cannot reach daemon at {args.host}:{port}: {exc}",
              file=sys.stderr)
        return 1
    status.pop("ok", None)
    status.pop("trace_id", None)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    if not status.get("enabled"):
        print("scrub plane disabled (start the daemon with --scrub)")
        return 0
    state = ("parked" if status.get("parked")
             else "running" if status.get("running") else "stopped")
    eta = status.get("eta_seconds")
    print(f"scrub {state}: cycle {status.get('cycle')} "
          f"({status.get('cycles_completed')} completed, "
          f"{status.get('resumed_cycles')} resumed from cursor)")
    print(f"progress {100.0 * status.get('progress', 0.0):.1f}% — "
          f"disk {status.get('disks_done')}/{status.get('disks_total')}"
          + ("" if eta is None else f", eta {eta:.1f} s"))
    print(f"verified {status.get('chunks_verified')} chunks "
          f"({status.get('cycle_chunks')} this cycle, "
          f"interval {status.get('interval_ms')} ms)")
    print(f"corrupt found {status.get('corrupt_found')}  "
          f"repaired {status.get('repaired')}  "
          f"repair failures {status.get('repair_failures')}  "
          f"quarantined {status.get('quarantined')}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal view of a running daemon (``hdpsr top``)."""
    import asyncio
    import json
    import time as _time

    from repro.service import ServiceClient, ServiceError

    if args.endpoint:
        return _cluster_top(args)
    port = _resolve_port(args)
    if port is None:
        return 2

    async def fetch() -> dict:
        client = await ServiceClient.connect(args.host, port)
        try:
            return await client.stats()
        finally:
            await client.close()

    try:
        while True:
            try:
                stats = asyncio.run(fetch())
            except (ServiceError, OSError) as exc:
                print(f"cannot scrape daemon at {args.host}:{port}: {exc}",
                      file=sys.stderr)
                return 1
            stats.pop("ok", None)
            if args.json:
                print(json.dumps(stats, indent=2, sort_keys=True))
            else:
                if not args.once:
                    # clear screen + home, like top(1)
                    print("\x1b[2J\x1b[H", end="")
                print(_render_top(stats), flush=True)
            if args.once:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # `hdpsr top --once | head` closing the pipe is a clean exit, not
        # a traceback. Detach stdout so interpreter shutdown doesn't retry
        # the flush on the broken descriptor.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _report_overload_chaos(report: dict) -> None:
    """Human rendering of one flash-crowd episode report."""
    shape = report.get("shape", {})
    overload = report.get("overload", {})
    repair = report.get("repair", {})
    print(f"flash crowd: {report.get('offered')} reads @ "
          f"{report.get('offered_rate')}/s (spike x"
          f"{shape.get('spike_factor', '?')}) against hot disk "
          f"{report.get('hot_disk')} "
          f"(capacity {report.get('hot_capacity_per_s')}/s), "
          f"control={'on' if report.get('control') else 'OFF'}")
    p99 = report.get("read_p99_seconds")
    p99_text = "-" if p99 is None else f"{p99 * 1e3:.1f} ms"
    print(f"completed {report.get('completed')}  "
          f"goodput pre {report.get('goodput_pre_per_s')}/s "
          f"spike {report.get('goodput_spike_per_s')}/s  "
          f"p99 {p99_text} (budget {report.get('p99_budget')}s, "
          f"violated={report.get('p99_violated')})")
    shed_hint = (report.get("shed_example") or {}).get("retry_after_ms")
    print(f"states {'->'.join(report.get('states_seen', []))}  "
          f"sheds {report.get('sheds')} "
          f"(retry_after {shed_hint} ms)  "
          f"deadline-expired {report.get('deadline_expired')}  "
          f"repair-paced {overload.get('repair_paced', 0)}")
    print(f"repair certified={repair.get('certified')}  "
          f"byte-identical={report.get('byte_identical')}  "
          f"recovered-healthy={report.get('recovered_healthy', 'n/a')}")


def _report_bitrot_chaos(report: dict) -> None:
    """Human-readable summary of one bitrot-chaos episode."""
    victims = report.get("victims", [])
    kinds = ", ".join(sorted({v.get("kind", "?") for v in victims}))
    print(f"seeded {len(victims)} silent corruptions mid-repair ({kinds})")
    if report.get("scrub"):
        window = report.get("detection_window_seconds")
        print(f"scrub plane: detected {report.get('detected')} / "
              f"repaired {report.get('read_repaired')}"
              + ("" if window is None else f" within {window}s"))
        print(f"foreground-read-clean={report.get('foreground_read_clean')}  "
              f"parked-while-shedding="
              f"{report.get('scrub_parked_while_shedding')}  "
              f"verifies-while-parked={report.get('verifies_while_parked')}  "
              f"resumed={report.get('scrub_resumed')}")
    else:
        print(f"scrub plane OFF (negative control): "
              f"{report.get('latent_corruptions')} corruption(s) still "
              "latent on disk")
    print(f"byte-identical={report.get('byte_identical')}  "
          f"repair certified={ (report.get('repair') or {}).get('certified') }")


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a chaos scenario: ``failover`` (kill the owner mid-repair),
    ``overload`` (flash crowd against a repairing daemon), or ``bitrot``
    (silent corruption against the scrub plane)."""
    import json
    import tempfile
    from pathlib import Path

    if args.scenario == "bitrot":
        from repro.service.chaos_bitrot import (
            BitrotChaosConfig,
            run_bitrot_chaos,
        )

        def execute(root: Path) -> dict:
            return run_bitrot_chaos(BitrotChaosConfig(
                root=root,
                scrub=not args.no_scrub,
                seed=args.seed,
                stripes=args.stripes,
                failed_disk=args.disk,
                corruptions=args.corruptions,
                deadline=args.deadline,
            ))
    elif args.scenario == "overload":
        from repro.service.chaos_overload import (
            OverloadChaosConfig,
            run_overload_chaos,
        )

        def execute(root: Path) -> dict:
            return run_overload_chaos(OverloadChaosConfig(
                control=not args.no_control,
                root=root,
                seed=args.seed,
                stripes=args.stripes,
                failed_disk=args.disk,
                p99_budget=(
                    args.p99_budget if args.p99_budget is not None else 0.3
                ),
                deadline=args.deadline,
            ))
    else:
        from repro.service.chaos import ChaosConfig, run_chaos

        def execute(root: Path) -> dict:
            return run_chaos(ChaosConfig(
                root=root,
                seed=args.seed,
                stripes=args.stripes,
                failed_disk=args.disk,
                crash_at=args.crash_at,
                lease_ttl=args.lease_ttl,
                heartbeat_interval=args.heartbeat_interval,
                p99_budget=(
                    args.p99_budget if args.p99_budget is not None else 2.0
                ),
                deadline=args.deadline,
            ))

    if args.dir:
        report = execute(Path(args.dir))
    else:
        with tempfile.TemporaryDirectory(prefix="hdpsr-chaos-") as td:
            report = execute(Path(td))
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    elif args.scenario in ("overload", "bitrot"):
        if args.scenario == "overload":
            _report_overload_chaos(report)
        else:
            _report_bitrot_chaos(report)
        for failure in report.get("failures", []):
            print(f"FAIL: {failure}", file=sys.stderr)
        print("chaos: PASS" if report.get("passed") else "chaos: FAIL")
    else:
        latency = report.get("foreground_latency", {})
        repair = report.get("repair_b", {})
        print(f"daemon a killed mid-repair (exit {report.get('exit_code_a')}), "
              f"takeover in {report.get('takeover_seconds', '?')}s")
        print(f"handoff repaired disk(s) {report.get('handoffs')} on b: "
              f"{repair.get('stripes_repaired', '?')} stripes "
              f"({repair.get('resumed_stripes', '?')} resumed from journal), "
              f"certified={repair.get('certified')}")
        print(f"foreground: {latency.get('count', 0)} reads, "
              f"p50 {latency.get('p50', 0) * 1e3:.2f} ms, "
              f"p99 {latency.get('p99', 0) * 1e3:.2f} ms")
        print(f"byte-identical={report.get('byte_identical')}  "
              f"duplicate-writes={len(report.get('duplicate_writes', []))}  "
              f"stale-owner-fenced={report.get('stale_owner_fenced')}")
        for failure in report.get("failures", []):
            print(f"FAIL: {failure}", file=sys.stderr)
        print("chaos: PASS" if report.get("passed") else "chaos: FAIL")
    return 0 if report.get("passed") else 1


def cmd_version(args: argparse.Namespace) -> int:
    print(f"hdpsr {__version__}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hdpsr",
        description="HD-PSR: partial stripe repair for erasure-coded "
                    "high-density storage servers (ICPP 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command")

    p_repair = sub.add_parser("repair", help="compare single-disk recovery schemes")
    _add_server_args(p_repair)
    p_repair.add_argument("--disk", type=int, default=0, help="disk to fail")
    p_repair.add_argument("--algorithm", default="all",
                          choices=["all"] + list(ALGORITHMS))
    p_repair.add_argument("--timeline", default=None,
                          help="write per-chunk timelines as CSV (one file per scheme)")
    _add_fault_args(p_repair)
    _add_observability_args(p_repair)
    p_repair.set_defaults(func=_observed(cmd_repair))

    p_multi = sub.add_parser("multi", help="multi-disk recovery, naive vs cooperative")
    _add_server_args(p_multi)
    p_multi.add_argument("--failed", type=int, default=2, help="number of failed disks")
    p_multi.add_argument("--algorithm", default="all",
                         choices=["all"] + list(ALGORITHMS))
    _add_fault_args(p_multi)
    _add_observability_args(p_multi)
    p_multi.set_defaults(func=_observed(cmd_multi))

    p_faults = sub.add_parser(
        "faults", help="generate a reproducible fault-injection spec (JSON)"
    )
    p_faults.add_argument("--seed", type=int, default=0, help="generator RNG seed")
    p_faults.add_argument("--events", type=int, default=4,
                          help="number of fault events to draw")
    p_faults.add_argument("--horizon", type=float, default=10.0,
                          help="events land in [0, horizon) modeled seconds")
    p_faults.add_argument("--num-disks", type=int, default=36,
                          help="disk-id range to target")
    p_faults.add_argument("--stripes", type=int, default=0,
                          help="stripe-id range for sector errors (0 disables them)")
    p_faults.add_argument("--shards", type=int, default=9,
                          help="shard-id range for sector errors (the code's n)")
    p_faults.add_argument("--kinds", default=",".join(
        ("disk_fail", "sector_error", "slow", "hang")),
        help="comma-separated event kinds to draw from")
    p_faults.add_argument("--max-disk-fails", type=int, default=1,
                          help="cap on permanent disk failures (extras become slow)")
    p_faults.add_argument("--output", default=None, metavar="SPEC.json",
                          help="write the spec here (default: print to stdout)")
    p_faults.set_defaults(func=cmd_faults)

    p_obs = sub.add_parser("observe", help="print the Observation 1-3 tables")
    p_obs.add_argument("--stripes", type=int, default=100)
    p_obs.add_argument("--k", type=int, default=12)
    p_obs.add_argument("--memory", type=int, default=12)
    p_obs.add_argument("--seed", type=int, default=0)
    p_obs.set_defaults(func=cmd_observe)

    p_dur = sub.add_parser(
        "durability", help="Monte-Carlo data-loss risk per repair scheme"
    )
    _add_server_args(p_dur)
    p_dur.add_argument("--algorithm", default="all",
                       choices=["all"] + list(ALGORITHMS))
    p_dur.add_argument("--afr", type=float, default=0.5,
                       help="annualised failure rate of each disk")
    p_dur.add_argument("--weibull-shape", type=float, default=None,
                       help="use a Weibull lifetime with this shape instead of exponential")
    p_dur.add_argument("--mission-years", type=float, default=10.0)
    p_dur.add_argument("--trials", type=int, default=300)
    p_dur.add_argument("--amplify", type=float, default=2000.0,
                       help="scale the repair window (models full-capacity disks)")
    _add_observability_args(p_dur)
    p_dur.set_defaults(func=_observed(cmd_durability))

    p_trace = sub.add_parser(
        "trace", help="analyze captured traces and diff runs"
    )
    tsub = p_trace.add_subparsers(dest="trace_command")

    p_sum = tsub.add_parser(
        "summarize",
        help="round timelines, ACWT, per-disk blame, memory occupancy")
    p_sum.add_argument("file", help="a .jsonl trace from --trace file.jsonl")
    p_sum.add_argument("--json", action="store_true",
                       help="print the summary as JSON instead of tables")
    p_sum.add_argument("--output", default=None, metavar="FILE",
                       help="also write the JSON summary to this file")
    p_sum.set_defaults(func=cmd_trace_summarize)

    p_blame = tsub.add_parser(
        "blame", help="per-disk bottleneck attribution table")
    p_blame.add_argument("file", help="a .jsonl trace from --trace file.jsonl")
    p_blame.add_argument("--top", type=int, default=None,
                         help="show only the N most-blamed disks")
    p_blame.set_defaults(func=cmd_trace_blame)

    p_diff = tsub.add_parser(
        "diff",
        help="compare two runs; exit 1 when a metric regresses past the "
             "threshold (CI perf gate)")
    p_diff.add_argument("old", help="baseline: .jsonl trace, summary/benchmark "
                                    ".json, or .prom metrics dump")
    p_diff.add_argument("new", help="candidate run, same formats")
    p_diff.add_argument("--threshold", type=float, default=0.05,
                        help="relative-delta regression threshold (default 0.05)")
    p_diff.add_argument("--only", default=None, metavar="SUBSTR",
                        help="restrict the comparison to keys containing SUBSTR")
    p_diff.add_argument("--all", action="store_true",
                        help="list unchanged metrics too")
    p_diff.add_argument("--json", action="store_true",
                        help="emit the diff as JSON")
    p_diff.set_defaults(func=cmd_trace_diff)

    p_run = sub.add_parser("run", help="run a JSON experiment spec")
    p_run.add_argument("spec", help="path to the experiment spec (JSON)")
    p_run.add_argument("--output", default=None, help="write result rows to this JSON file")
    _add_observability_args(p_run)
    p_run.set_defaults(func=_observed(cmd_run))

    p_report = sub.add_parser(
        "report", help="render EXPERIMENTS.md from benchmark artefacts"
    )
    p_report.add_argument("--results", default="benchmarks/results",
                          help="directory of benchmark JSON artefacts")
    p_report.add_argument("--output", default=None,
                          help="write to this file instead of stdout")
    p_report.set_defaults(func=cmd_report)

    p_serve = sub.add_parser(
        "serve",
        help="run the asyncio repair service (sharded store, JSON-lines API)")
    _add_server_args(p_serve)
    p_serve.add_argument("--algorithm", default="hd-psr-ap", choices=list(ALGORITHMS))
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listen port (0 = ephemeral; see --port-file)")
    p_serve.add_argument("--port-file", default=None, metavar="FILE",
                         help="write the actual bound port here once listening")
    p_serve.add_argument("--store", default=None, metavar="DIR",
                         help="back chunks with a sharded on-disk store at DIR "
                              "(default: in-memory)")
    p_serve.add_argument("--shards", type=int, default=4,
                         help="shard count for --store (default 4)")
    p_serve.add_argument("--max-stripes", type=int, default=4,
                         help="concurrent stripe decodes per repair job")
    p_serve.add_argument("--gate-width", dest="per_disk_reads", type=int,
                         default=argparse.SUPPRESS,
                         help="concurrent reads allowed per disk (the DiskGate "
                              "width; default 2). Canonical name for "
                              "--per-disk-reads — last flag given wins.")
    p_serve.add_argument("--per-disk-reads", type=int, default=2,
                         help="alias of --gate-width (kept for older scripts)")
    p_serve.add_argument("--no-overload-control", action="store_true",
                         help="disable the CoDel-style brownout controller "
                              "(deadline errors still honored; see "
                              "docs/service.md#overload--brownout)")
    p_serve.add_argument("--overload-target-ms", type=float, default=5.0,
                         help="gate-wait target: a 100 ms window whose "
                              "*minimum* wait exceeds this browns the daemon "
                              "out (repair paced)")
    p_serve.add_argument("--overload-shed-target-ms", type=float, default=50.0,
                         help="escalation target: min gate wait above this "
                              "starts shedding degraded reads")
    p_serve.add_argument("--overload-interval-ms", type=float, default=100.0,
                         help="CoDel window length in milliseconds")
    p_serve.add_argument("--no-fsync", action="store_true",
                         help="skip fsync in store and journal (tests/CI)")
    p_serve.add_argument("--scrub", action="store_true",
                         help="run the background scrub plane: continuously "
                              "verify every chunk against its CRC32C sidecar, "
                              "quarantine + read-repair silent corruption")
    p_serve.add_argument("--scrub-interval-ms", type=float, default=20.0,
                         help="pause between chunk verifies (the scrub rate "
                              "knob; stretched under brownout, parked while "
                              "shedding)")
    p_serve.add_argument("--scrub-cycle-pause", type=float, default=0.5,
                         metavar="SECONDS",
                         help="idle pause between full scrub cycles")
    p_serve.add_argument("--scrub-journal", default=None, metavar="DIR",
                         help="crash-resumable scrub-cursor WAL directory "
                              "(default: <--journal>/scrub-cursor when "
                              "--journal is set)")
    p_serve.add_argument("--scrub-no-repair", action="store_true",
                         help="detection-only scrub: quarantine corrupt "
                              "chunks but do not read-repair them")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         help="serve HTTP /metrics + /healthz on this port "
                              "(0 = ephemeral; see --metrics-port-file)")
    p_serve.add_argument("--metrics-port-file", default=None, metavar="FILE",
                         help="write the bound telemetry port here (implies "
                              "an ephemeral --metrics-port)")
    p_serve.add_argument("--cluster-dir", default=None, metavar="DIR",
                         help="join the lease-based repair cluster rooted at "
                              "DIR (shared with peer daemons)")
    p_serve.add_argument("--node-id", default=None,
                         help="cluster node name (default node-<pid>)")
    p_serve.add_argument("--cluster-shards", type=int, default=4,
                         help="ownership shards in the cluster (disk %% N)")
    p_serve.add_argument("--lease-ttl", type=float, default=2.0,
                         help="lease expiry in seconds (bounds takeover time)")
    p_serve.add_argument("--heartbeat-interval", type=float, default=0.5,
                         help="seconds between lease renewals (< --lease-ttl)")
    p_serve.add_argument("--attach", action="store_true",
                         help="front an existing --store without re-writing "
                              "provisioned data into it (joining daemons)")
    p_serve.add_argument("--max-inflight", type=int, default=None,
                         help="admission cap: refuse further concurrent "
                              "requests with a retryable overload error")
    p_serve.add_argument("--daemon-index", type=int, default=0,
                         help="this daemon's index in a cluster fault "
                              "schedule (daemon_crash / wire faults)")
    _add_fault_args(p_serve)
    _add_observability_args(p_serve)
    p_serve.set_defaults(func=_observed(cmd_serve))

    p_client = sub.add_parser(
        "client",
        help="drive a repair-under-load workload against hdpsr serve")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=None)
    p_client.add_argument("--port-file", default=None, metavar="FILE",
                          help="read the port from this file (waits for it)")
    p_client.add_argument("--connect-timeout", type=float, default=10.0,
                          help="seconds to wait for --port-file to appear")
    p_client.add_argument("--fail", type=int, action="append", default=None,
                          metavar="DISK",
                          help="disk to fail + repair (repeatable; default 0)")
    p_client.add_argument("--shape", default=None,
                          choices=["constant", "diurnal", "bursty", "flash"],
                          help="switch to OPEN-loop load: fire reads at this "
                               "arrival shape's scheduled instants regardless "
                               "of completions (ignores --reads/"
                               "--read-concurrency)")
    p_client.add_argument("--rate", type=float, default=50.0,
                          help="open loop: mean offered rate in requests/s")
    p_client.add_argument("--duration", type=float, default=5.0,
                          help="open loop: schedule length in seconds")
    p_client.add_argument("--deadline-ms", type=float, default=None,
                          help="per-request deadline budget attached on the "
                               "wire (daemon sheds work that can't meet it)")
    p_client.add_argument("--connections", type=int, default=32,
                          help="open loop: client socket pool size")
    p_client.add_argument("--reads", type=int, default=100,
                          help="foreground chunk reads issued during repair")
    p_client.add_argument("--read-concurrency", type=int, default=4,
                          help="concurrent reader connections")
    p_client.add_argument("--seed", type=int, default=0)
    p_client.add_argument("--resume", action="store_true",
                          help="resume journaled repairs instead of starting new")
    p_client.add_argument("--shutdown", action="store_true",
                          help="stop the daemon after the workload")
    p_client.add_argument("--json", action="store_true",
                          help="print the report as JSON")
    _add_observability_args(p_client)
    p_client.set_defaults(func=_observed(cmd_client))

    p_scrub = sub.add_parser(
        "scrub",
        help="query a running daemon's scrub plane (cursor, progress, "
             "quarantine)")
    p_scrub.add_argument("--host", default="127.0.0.1")
    p_scrub.add_argument("--port", type=int, default=None)
    p_scrub.add_argument("--port-file", default=None, metavar="FILE",
                         help="read the daemon port from this file (waits)")
    p_scrub.add_argument("--connect-timeout", type=float, default=10.0,
                         help="seconds to wait for --port-file to appear")
    p_scrub.add_argument("--json", action="store_true",
                         help="emit the raw scrub snapshot as JSON")
    p_scrub.set_defaults(func=cmd_scrub)

    p_top = sub.add_parser(
        "top",
        help="live repair-progress / latency view of a running daemon")
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=None)
    p_top.add_argument("--port-file", default=None, metavar="FILE",
                       help="read the daemon port from this file (waits for it)")
    p_top.add_argument("--connect-timeout", type=float, default=10.0,
                       help="seconds to wait for --port-file to appear")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="refresh period in seconds")
    p_top.add_argument("--once", action="store_true",
                       help="print one frame and exit (scripts/CI)")
    p_top.add_argument("--json", action="store_true",
                       help="emit the raw stats snapshot as JSON")
    p_top.add_argument("--endpoint", action="append", default=None,
                       metavar="HOST:PORT",
                       help="aggregate a cluster view over these daemons "
                            "(repeatable; replaces --port/--port-file)")
    p_top.set_defaults(func=cmd_top)

    p_chaos = sub.add_parser(
        "chaos",
        help="deterministic chaos scenarios: failover (kill the owner "
             "mid-repair), overload (flash crowd vs a repairing daemon), "
             "or bitrot (silent corruption vs the scrub plane)")
    p_chaos.add_argument("--scenario", choices=["failover", "overload", "bitrot"],
                         default="failover",
                         help="failover: 2 daemons, lease takeover + journal "
                              "handoff. overload: open-loop flash crowd "
                              "against one repairing daemon; asserts brownout "
                              "entry/exit, bounded p99, clean repair. bitrot: "
                              "corruption seeded mid-repair; asserts scrub "
                              "detection, byte-identical read-repair, zero "
                              "corrupt bytes served, park-under-shed")
    p_chaos.add_argument("--no-control", action="store_true",
                         help="overload scenario only: run the negative "
                              "control (controller + deadlines off; expect "
                              "the p99 budget to be violated)")
    p_chaos.add_argument("--no-scrub", action="store_true",
                         help="bitrot scenario only: run the negative control "
                              "(scrub plane off; the seeded corruption stays "
                              "latent on disk — see latent_corruptions)")
    p_chaos.add_argument("--corruptions", type=int, default=3,
                         help="bitrot scenario: corrupt chunks seeded "
                              "(kinds cycle bitrot/torn_write/"
                              "misdirected_write)")
    p_chaos.add_argument("--dir", default=None, metavar="DIR",
                         help="scratch directory (default: a temp dir)")
    p_chaos.add_argument("--seed", type=int, default=11)
    p_chaos.add_argument("--stripes", type=int, default=12,
                         help="provisioned stripes (scenario size)")
    p_chaos.add_argument("--disk", type=int, default=3,
                         help="disk failed and repaired on the doomed daemon")
    p_chaos.add_argument("--crash-at", type=float, default=2.5e-5,
                         help="modeled second the owner daemon dies at "
                              "(mid-repair at the default geometry)")
    p_chaos.add_argument("--lease-ttl", type=float, default=0.6)
    p_chaos.add_argument("--heartbeat-interval", type=float, default=0.15)
    p_chaos.add_argument("--p99-budget", type=float, default=None,
                         help="wall-clock bound asserted on foreground p99 "
                              "(default 2.0s for failover, 0.3s for overload)")
    p_chaos.add_argument("--deadline", type=float, default=60.0,
                         help="overall scenario timeout in seconds")
    p_chaos.add_argument("--json", action="store_true",
                         help="print the full JSON report")
    p_chaos.add_argument("--output", default=None, metavar="FILE",
                         help="also write the JSON report here")
    _add_observability_args(p_chaos)
    p_chaos.set_defaults(func=_observed(cmd_chaos))

    p_ver = sub.add_parser("version", help="print the package version")
    p_ver.set_defaults(func=cmd_version)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
