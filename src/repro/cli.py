"""``hdpsr`` command-line interface.

Subcommands:

* ``hdpsr repair``  — single-disk recovery comparison (FSR vs HD-PSR-*);
* ``hdpsr multi``   — multi-disk recovery, naive vs cooperative;
* ``hdpsr observe`` — print the Observation 1-3 tables (Figures 3-4);
* ``hdpsr version`` — print the package version.

Every stochastic element is seeded via ``--seed`` for reproducible output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import (
    ALGORITHMS,
    cooperative_multi_disk_repair,
    naive_multi_disk_repair,
    repair_single_disk,
)
from repro.core.analysis import acwt_curve_vs_pa, observation1_table, rounds_curve_vs_pr
from repro.utils.tables import AsciiTable
from repro.utils.units import format_bytes, format_duration
from repro.version import __version__
from repro.workloads import build_exp_server, normal_transfer_times


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="capture a structured trace: .json = Chrome trace_event "
             "(chrome://tracing, Perfetto), .jsonl = one event per line")
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="dump the metrics registry in Prometheus text format")


def _observed(fn):
    """Wrap a subcommand so --trace/--metrics capture its execution."""

    def run(args: argparse.Namespace) -> int:
        trace_path = getattr(args, "trace", None)
        metrics_path = getattr(args, "metrics", None)
        if not trace_path and not metrics_path:
            return fn(args)
        from repro.obs import (
            MetricsRegistry,
            RecordingTracer,
            use_registry,
            use_tracer,
            write_chrome_trace,
            write_jsonl,
            write_prometheus,
        )

        tracer = RecordingTracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            rc = fn(args)
        if trace_path:
            if str(trace_path).endswith(".jsonl"):
                path = write_jsonl(tracer, trace_path)
            else:
                path = write_chrome_trace(tracer, trace_path)
            print(f"trace written: {path} ({len(tracer.events)} events)")
        if metrics_path:
            path = write_prometheus(registry, metrics_path)
            print(f"metrics written: {path}")
        return rc

    return run


def _add_server_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=9, help="total shards per stripe")
    parser.add_argument("--k", type=int, default=6, help="data shards per stripe")
    parser.add_argument("--disk-size", default="1GiB", help="data on each failed disk")
    parser.add_argument("--chunk-size", default="64MiB", help="chunk size")
    parser.add_argument("--num-disks", type=int, default=36, help="disks in the chassis")
    parser.add_argument("--memory", type=int, default=None,
                        help="repair memory capacity c in chunks (default 2k)")
    parser.add_argument("--ros", type=float, default=0.1, help="slow-disk ratio")
    parser.add_argument("--slow-factor", type=float, default=4.0,
                        help="slow disks run this many times slower")
    parser.add_argument("--placement", choices=["rotating", "random"], default="random")
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")


def _build_server(args: argparse.Namespace):
    return build_exp_server(
        n=args.n, k=args.k, disk_size=args.disk_size, chunk_size=args.chunk_size,
        num_disks=args.num_disks, memory_chunks=args.memory,
        ros=args.ros, slow_factor=args.slow_factor, seed=args.seed,
        placement=args.placement,
    )


def cmd_repair(args: argparse.Namespace) -> int:
    from pathlib import Path

    algos = list(ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    table = AsciiTable(
        ["scheme", "repair time", "vs FSR", "ACWT", "P_a", "P_r", "selection"],
        title=(f"Single-disk recovery: RS({args.n},{args.k}), "
               f"{args.disk_size}/disk, chunk {args.chunk_size}, "
               f"ROS {args.ros:.0%}, seed {args.seed}"),
    )
    baseline: Optional[float] = None
    for name in algos:
        server = _build_server(args)
        server.fail_disk(args.disk)
        out = repair_single_disk(server, ALGORITHMS[name](), args.disk)
        if baseline is None:
            baseline = out.transfer_time
        delta = (1 - out.transfer_time / baseline) * 100
        table.add_row([
            name,
            format_duration(out.transfer_time),
            "baseline" if name == algos[0] else f"{-delta:+.1f}%".replace("+-", "-"),
            f"{out.acwt:.3f} s",
            out.plan.pa if out.plan.pa is not None else "per-stripe",
            out.plan.pr if out.plan.pr is not None else "auto",
            format_duration(out.selection_seconds),
        ])
        if args.timeline:
            path = Path(args.timeline)
            target = path.with_name(f"{path.stem}-{name}{path.suffix or '.csv'}")
            out.report.to_csv(target)
            print(f"timeline written: {target}")
    print(table.render())
    return 0


def cmd_multi(args: argparse.Namespace) -> int:
    table = AsciiTable(
        ["algorithm", "mode", "repair time", "chunks read", "data read"],
        title=(f"Multi-disk recovery: {args.failed} failed disk(s), "
               f"RS({args.n},{args.k}), {args.disk_size}/disk, seed {args.seed}"),
    )
    algos = list(ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    failed = list(range(args.failed))
    for name in algos:
        for cooperative in (False, True):
            server = _build_server(args)
            for d in failed:
                server.fail_disk(d)
            repair = cooperative_multi_disk_repair if cooperative else naive_multi_disk_repair
            out = repair(server, ALGORITHMS[name], failed)
            table.add_row([
                name,
                "cooperative" if cooperative else "naive",
                format_duration(out.total_time),
                out.chunks_read,
                format_bytes(out.chunks_read * server.config.chunk_size),
            ])
    print(table.render())
    return 0


def cmd_observe(args: argparse.Namespace) -> int:
    s, k, c = args.stripes, args.k, args.memory or args.k * 2

    t1 = AsciiTable(["P_a", "P_r"], title=f"Observation 1: P_a vs P_r (c={c})")
    for pa, pr in observation1_table(c):
        t1.add_row([pa, pr])
    print(t1.render())
    print()

    ros_grid = [0.02, 0.05, 0.08, 0.10]
    curves = {
        ros: acwt_curve_vs_pa(
            normal_transfer_times(s, k, ros=ros, seed=args.seed).L, c
        )
        for ros in ros_grid
    }
    t2 = AsciiTable(
        ["P_a"] + [f"ROS={r:.0%}" for r in ros_grid],
        title=f"Observation 2: ACWT vs P_a (s={s}, k={k}, c={c})",
        float_fmt=".4f",
    )
    for pa in range(1, k + 1):
        t2.add_row([pa] + [curves[r][pa] for r in ros_grid])
    print(t2.render())
    print()

    t3 = AsciiTable(["P_r", "TR"], title=f"Observation 3: TR vs P_r (k={k}, c={c})")
    for pr, tr in rounds_curve_vs_pr(k, c).items():
        t3.add_row([pr, tr])
    print(t3.render())
    return 0


def cmd_durability(args: argparse.Namespace) -> int:
    from repro.reliability import (
        ExponentialLifetime,
        WeibullLifetime,
        estimate_repair_seconds,
        simulate_durability,
    )
    from repro.reliability.lifetimes import YEAR_SECONDS

    if args.weibull_shape is not None:
        lifetime = WeibullLifetime(
            scale_seconds=YEAR_SECONDS / args.afr, shape=args.weibull_shape
        )
    else:
        lifetime = ExponentialLifetime(afr=args.afr)
    table = AsciiTable(
        ["scheme", "repair time", "window", "P(loss)", "95% CI", "MTTDL (y)"],
        title=(f"Durability: RS({args.n},{args.k}), {args.num_disks} disks, "
               f"{lifetime.describe()}, mission {args.mission_years:.0f}y, "
               f"{args.trials} trials"),
    )
    algos = list(ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    for name in algos:
        server = _build_server(args)
        repair = estimate_repair_seconds(server, ALGORITHMS[name](), disk=0)
        window = repair * args.amplify
        result = simulate_durability(
            server.layout, num_disks=args.num_disks, lifetime=lifetime,
            repair_seconds=window, mission_years=args.mission_years,
            trials=args.trials, seed=args.seed,
        )
        mttdl = "inf" if result.mttdl_years == float("inf") else f"{result.mttdl_years:.0f}"
        low, high = result.ci95
        table.add_row([
            name, format_duration(repair), format_duration(window),
            f"{result.loss_probability:.4f}", f"[{low:.4f}, {high:.4f}]", mttdl,
        ])
    print(table.render())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.experiment import run_sweep, save_rows

    spec_path = Path(args.spec)
    if not spec_path.exists():
        print(f"spec file {spec_path} does not exist", file=sys.stderr)
        return 1
    try:
        data = json.loads(spec_path.read_text())
    except json.JSONDecodeError as exc:
        print(f"spec file is not valid JSON: {exc}", file=sys.stderr)
        return 1
    rows = run_sweep(data)
    table = AsciiTable(
        ["experiment", "algorithm", "total time", "ACWT", "chunks read", "selection"],
        title=f"Experiment spec {data.get('name', spec_path.stem)!r}",
    )
    for row in rows:
        table.add_row([
            row["experiment"],
            row["algorithm"],
            format_duration(row["total_time"]),
            f"{row['acwt']:.3f} s",
            int(row["chunks_read"]),
            format_duration(row["selection_seconds"]),
        ])
    print(table.render())
    if args.output:
        path = save_rows(rows, args.output)
        print(f"wrote {path}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.reporting import render_report, write_report

    results = Path(args.results)
    if not results.exists():
        print(f"results directory {results} does not exist; "
              f"run `pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 1
    if args.output:
        path = write_report(results, args.output)
        print(f"wrote {path}")
    else:
        print(render_report(results))
    return 0


def cmd_version(args: argparse.Namespace) -> int:
    print(f"hdpsr {__version__}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hdpsr",
        description="HD-PSR: partial stripe repair for erasure-coded "
                    "high-density storage servers (ICPP 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command")

    p_repair = sub.add_parser("repair", help="compare single-disk recovery schemes")
    _add_server_args(p_repair)
    p_repair.add_argument("--disk", type=int, default=0, help="disk to fail")
    p_repair.add_argument("--algorithm", default="all",
                          choices=["all"] + list(ALGORITHMS))
    p_repair.add_argument("--timeline", default=None,
                          help="write per-chunk timelines as CSV (one file per scheme)")
    _add_observability_args(p_repair)
    p_repair.set_defaults(func=_observed(cmd_repair))

    p_multi = sub.add_parser("multi", help="multi-disk recovery, naive vs cooperative")
    _add_server_args(p_multi)
    p_multi.add_argument("--failed", type=int, default=2, help="number of failed disks")
    p_multi.add_argument("--algorithm", default="all",
                         choices=["all"] + list(ALGORITHMS))
    _add_observability_args(p_multi)
    p_multi.set_defaults(func=_observed(cmd_multi))

    p_obs = sub.add_parser("observe", help="print the Observation 1-3 tables")
    p_obs.add_argument("--stripes", type=int, default=100)
    p_obs.add_argument("--k", type=int, default=12)
    p_obs.add_argument("--memory", type=int, default=12)
    p_obs.add_argument("--seed", type=int, default=0)
    p_obs.set_defaults(func=cmd_observe)

    p_dur = sub.add_parser(
        "durability", help="Monte-Carlo data-loss risk per repair scheme"
    )
    _add_server_args(p_dur)
    p_dur.add_argument("--algorithm", default="all",
                       choices=["all"] + list(ALGORITHMS))
    p_dur.add_argument("--afr", type=float, default=0.5,
                       help="annualised failure rate of each disk")
    p_dur.add_argument("--weibull-shape", type=float, default=None,
                       help="use a Weibull lifetime with this shape instead of exponential")
    p_dur.add_argument("--mission-years", type=float, default=10.0)
    p_dur.add_argument("--trials", type=int, default=300)
    p_dur.add_argument("--amplify", type=float, default=2000.0,
                       help="scale the repair window (models full-capacity disks)")
    p_dur.set_defaults(func=cmd_durability)

    p_run = sub.add_parser("run", help="run a JSON experiment spec")
    p_run.add_argument("spec", help="path to the experiment spec (JSON)")
    p_run.add_argument("--output", default=None, help="write result rows to this JSON file")
    _add_observability_args(p_run)
    p_run.set_defaults(func=_observed(cmd_run))

    p_report = sub.add_parser(
        "report", help="render EXPERIMENTS.md from benchmark artefacts"
    )
    p_report.add_argument("--results", default="benchmarks/results",
                          help="directory of benchmark JSON artefacts")
    p_report.add_argument("--output", default=None,
                          help="write to this file instead of stdout")
    p_report.set_defaults(func=cmd_report)

    p_ver = sub.add_parser("version", help="print the package version")
    p_ver.set_defaults(func=cmd_version)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
