"""Incremental partial-stripe reconstruction (``RecoverWithSomeShards``).

Partial stripe repair feeds surviving chunks to the decoder in *repair
rounds* of ``P_a`` chunks; after each round the chunks are folded into a
small accumulator and their memory slots are released. This module is the
coding-side mechanism that makes that possible: because RS decoding is a
linear combination (Equation (2) of the paper), the sum can be evaluated in
any order and any grouping.

:class:`PartialDecoder` tracks, per repair target, an accumulator chunk and
the set of survivors still to be folded. It is deliberately stateful — its
lifecycle matches one stripe's repair:

>>> pd = PartialDecoder(code, survivor_ids=[0, 1, 3, 5], targets=[2])
>>> pd.feed({0: shard0, 1: shard1})     # round 1: P_a = 2  # doctest: +SKIP
>>> pd.feed({3: shard3, 5: shard5})     # round 2           # doctest: +SKIP
>>> rebuilt = pd.result(2)              # doctest: +SKIP
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import CodingError
from repro.ec.decoder import reconstruction_coefficients
from repro.gf import gf_mul_add_scalar

if TYPE_CHECKING:  # pragma: no cover
    from repro.ec.encoder import RSCode


class PartialDecoder:
    """Stateful incremental decoder for one stripe's lost shards.

    Args:
        code: the (n, k) RS code.
        survivor_ids: exactly k shard indices that will be fed, in any
            grouping, across repair rounds.
        targets: lost shard indices to rebuild (1 for single-disk repair,
            more under multi-disk failure).
        chunk_size: shard length in bytes; inferred from the first fed
            shard when omitted.
    """

    def __init__(
        self,
        code: "RSCode",
        survivor_ids: Sequence[int],
        targets: Sequence[int],
        chunk_size: Optional[int] = None,
    ) -> None:
        if len(targets) == 0:
            raise CodingError("PartialDecoder needs at least one target shard")
        if len(set(targets)) != len(targets):
            raise CodingError(f"duplicate targets: {list(targets)}")
        overlap = set(targets) & set(survivor_ids)
        if overlap:
            raise CodingError(f"targets {sorted(overlap)} cannot also be survivors")
        self.code = code
        self.survivor_ids = [int(j) for j in survivor_ids]
        self.targets = [int(t) for t in targets]
        # Coefficient table: coeffs[target][survivor] (validates survivor set).
        self._coeffs: Dict[int, Dict[int, int]] = {
            t: reconstruction_coefficients(code, self.survivor_ids, t) for t in self.targets
        }
        self._pending = set(self.survivor_ids)
        self._chunk_size = chunk_size
        self._acc: Dict[int, np.ndarray] = {}
        self._fed_count = 0

    # ----------------------------------------------------------------- state
    @property
    def pending(self) -> List[int]:
        """Survivor shard indices not yet folded in (sorted)."""
        return sorted(self._pending)

    @property
    def complete(self) -> bool:
        """True once all k survivors have been folded."""
        return not self._pending

    @property
    def rounds_fed(self) -> int:
        """How many ``feed`` calls (repair rounds) happened so far."""
        return self._fed_count

    def memory_chunks_held(self) -> int:
        """Number of accumulator chunks currently resident (= #targets).

        This is PSR's memory footprint between rounds: one chunk per repair
        target, regardless of P_a — the property that lets P_r stripes
        coexist in a c-chunk memory.
        """
        return len(self._acc)

    # ------------------------------------------------------------------ feed
    def feed(self, shards: Mapping[int, np.ndarray]) -> "PartialDecoder":
        """Fold one repair round's chunks into every target's accumulator.

        Args:
            shards: mapping of survivor shard index -> chunk buffer. Each
                survivor may be fed exactly once over the decoder lifetime.
        """
        if not shards:
            raise CodingError("feed() called with no shards")
        for sid, buf in shards.items():
            if sid not in self._pending:
                if sid in self.survivor_ids:
                    raise CodingError(f"survivor shard {sid} was already fed")
                raise CodingError(f"shard {sid} is not one of the declared survivors")
            arr = np.asarray(buf, dtype=np.uint8)
            if arr.ndim != 1:
                raise CodingError(f"shard {sid} must be 1-D, got shape {arr.shape}")
            if self._chunk_size is None:
                self._chunk_size = arr.size
            elif arr.size != self._chunk_size:
                raise CodingError(
                    f"shard {sid} has {arr.size} bytes, expected {self._chunk_size}"
                )
            for target in self.targets:
                acc = self._acc.get(target)
                if acc is None:
                    acc = np.zeros(self._chunk_size, dtype=np.uint8)
                    self._acc[target] = acc
                gf_mul_add_scalar(acc, self._coeffs[target][sid], arr)
            self._pending.discard(sid)
        self._fed_count += 1
        return self

    # ---------------------------------------------------------------- result
    def result(self, target: int) -> np.ndarray:
        """Return the rebuilt shard for ``target`` (all survivors must be fed)."""
        if target not in self._coeffs:
            raise CodingError(f"{target} is not a declared target")
        if self._pending:
            raise CodingError(
                f"decode incomplete; survivors still pending: {self.pending}"
            )
        if target not in self._acc:
            # Possible only if chunk_size was never learned (feed never called
            # with this configuration) — guarded by the pending check above.
            raise CodingError("no data was fed")
        return self._acc[target]

    def results(self) -> Dict[int, np.ndarray]:
        """All rebuilt shards keyed by target index."""
        return {t: self.result(t) for t in self.targets}
