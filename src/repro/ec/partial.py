"""Incremental partial-stripe reconstruction (``RecoverWithSomeShards``).

Partial stripe repair feeds surviving chunks to the decoder in *repair
rounds* of ``P_a`` chunks; after each round the chunks are folded into a
small accumulator and their memory slots are released. This module is the
coding-side mechanism that makes that possible: because RS decoding is a
linear combination (Equation (2) of the paper), the sum can be evaluated in
any order and any grouping.

:class:`PartialDecoder` tracks, per repair target, an accumulator chunk and
the set of survivors still to be folded. It is deliberately stateful — its
lifecycle matches one stripe's repair:

>>> pd = PartialDecoder(code, survivor_ids=[0, 1, 3, 5], targets=[2])
>>> pd.feed({0: shard0, 1: shard1})     # round 1: P_a = 2  # doctest: +SKIP
>>> pd.feed({3: shard3, 5: shard5})     # round 2           # doctest: +SKIP
>>> rebuilt = pd.result(2)              # doctest: +SKIP
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import CodingError
from repro.ec.decoder import reconstruction_coefficients
from repro.gf import gf_mat_inv, gf_mat_mul, gf_mul, gf_mul_add_scalar

if TYPE_CHECKING:  # pragma: no cover
    from repro.ec.encoder import RSCode


class PartialDecoder:
    """Stateful incremental decoder for one stripe's lost shards.

    Args:
        code: the (n, k) RS code.
        survivor_ids: exactly k shard indices that will be fed, in any
            grouping, across repair rounds.
        targets: lost shard indices to rebuild (1 for single-disk repair,
            more under multi-disk failure).
        chunk_size: shard length in bytes; inferred from the first fed
            shard when omitted.
    """

    def __init__(
        self,
        code: "RSCode",
        survivor_ids: Sequence[int],
        targets: Sequence[int],
        chunk_size: Optional[int] = None,
    ) -> None:
        if len(targets) == 0:
            raise CodingError("PartialDecoder needs at least one target shard")
        if len(set(targets)) != len(targets):
            raise CodingError(f"duplicate targets: {list(targets)}")
        overlap = set(targets) & set(survivor_ids)
        if overlap:
            raise CodingError(f"targets {sorted(overlap)} cannot also be survivors")
        self.code = code
        self.survivor_ids = [int(j) for j in survivor_ids]
        self.targets = [int(t) for t in targets]
        # Coefficient table: coeffs[target][survivor] (validates survivor set).
        self._coeffs: Dict[int, Dict[int, int]] = {
            t: reconstruction_coefficients(code, self.survivor_ids, t) for t in self.targets
        }
        self._pending = set(self.survivor_ids)
        self._chunk_size = chunk_size
        self._acc: Dict[int, np.ndarray] = {}
        self._fed_count = 0
        self._fed: List[int] = []
        # Per-target accumulator *row*: the length-k GF vector a_T with
        # A_T = a_T @ message. Each feed of survivor i adds
        # coeff * matrix[i]; once complete a_T equals the target's own
        # encoding row. These rows are what make mid-repair re-planning
        # possible: the accumulator is a virtual symbol with a known row.
        self._rows: Dict[int, np.ndarray] = {
            t: np.zeros(code.k, dtype=np.uint8) for t in self.targets
        }

    # ----------------------------------------------------------------- state
    @property
    def pending(self) -> List[int]:
        """Survivor shard indices not yet folded in (sorted)."""
        return sorted(self._pending)

    @property
    def complete(self) -> bool:
        """True once all k survivors have been folded."""
        return not self._pending

    @property
    def fed(self) -> List[int]:
        """Survivor shard indices already folded in, in feed order."""
        return list(self._fed)

    @property
    def rounds_fed(self) -> int:
        """How many ``feed`` calls (repair rounds) happened so far."""
        return self._fed_count

    def memory_chunks_held(self) -> int:
        """Number of accumulator chunks currently resident (= #targets).

        This is PSR's memory footprint between rounds: one chunk per repair
        target, regardless of P_a — the property that lets P_r stripes
        coexist in a c-chunk memory.
        """
        return len(self._acc)

    # ------------------------------------------------------------------ feed
    def feed(self, shards: Mapping[int, np.ndarray]) -> "PartialDecoder":
        """Fold one repair round's chunks into every target's accumulator.

        Args:
            shards: mapping of survivor shard index -> chunk buffer. Each
                survivor may be fed exactly once over the decoder lifetime.
        """
        if not shards:
            raise CodingError("feed() called with no shards")
        for sid, buf in shards.items():
            if sid not in self._pending:
                if sid in self.survivor_ids:
                    raise CodingError(f"survivor shard {sid} was already fed")
                raise CodingError(f"shard {sid} is not one of the declared survivors")
            arr = np.asarray(buf, dtype=np.uint8)
            if arr.ndim != 1:
                raise CodingError(f"shard {sid} must be 1-D, got shape {arr.shape}")
            if self._chunk_size is None:
                self._chunk_size = arr.size
            elif arr.size != self._chunk_size:
                raise CodingError(
                    f"shard {sid} has {arr.size} bytes, expected {self._chunk_size}"
                )
            for target in self.targets:
                acc = self._acc.get(target)
                if acc is None:
                    acc = np.zeros(self._chunk_size, dtype=np.uint8)
                    self._acc[target] = acc
                coeff = self._coeffs[target][sid]
                gf_mul_add_scalar(acc, coeff, arr)
                self._rows[target] ^= gf_mul(
                    np.uint8(coeff), self.code.matrix[sid].astype(np.uint8)
                )
            self._pending.discard(sid)
            self._fed.append(sid)
        self._fed_count += 1
        return self

    # --------------------------------------------------------------- salvage
    def replan(self, new_reads: Sequence[int]) -> "PartialDecoder":
        """Swap the remaining read set without discarding fed data.

        When a pending survivor dies mid-repair, each accumulator is a
        *virtual symbol*: ``A_T = a_T @ message`` with known row ``a_T``
        (tracked in :attr:`_rows`). Stacking the ``t`` accumulator rows with
        the encoding rows of ``k - t`` replacement reads gives a k x k
        system; if invertible, the old accumulators are re-mixed in place
        and only the replacement chunks ever hit a disk — everything already
        fed is salvaged.

        Args:
            new_reads: exactly ``k - len(targets)`` shard indices to read
                from here on. They may keep still-alive pending survivors,
                and may re-read already-fed shards when the pool of fresh
                ones runs dry (the accumulator still saves ``t`` reads over
                a restart; re-reading *every* fed shard makes the system
                singular and is rejected).

        Raises:
            CodingError: if the stacked system is singular (notably when
                fewer than ``len(targets)`` chunks have been fed, so the
                accumulator rows cannot be independent). Callers fall back
                to :meth:`restart`.
        """
        k, t = self.code.k, len(self.targets)
        reads = [int(r) for r in new_reads]
        if len(reads) != k - t:
            raise CodingError(
                f"replan needs exactly k - t = {k - t} new reads, got {len(reads)}"
            )
        if len(set(reads)) != len(reads):
            raise CodingError(f"duplicate replan reads: {reads}")
        bad = set(reads) & set(self.targets)
        if bad:
            raise CodingError(f"replan reads {sorted(bad)} are repair targets")
        for r in reads:
            if not 0 <= r < self.code.n:
                raise CodingError(f"replan read {r} out of range [0, {self.code.n})")
        mat = np.zeros((k, k), dtype=np.uint8)
        for j, target in enumerate(self.targets):
            mat[j] = self._rows[target]
        for idx, r in enumerate(reads):
            mat[t + idx] = self.code.matrix[r]
        inv = gf_mat_inv(mat)  # CodingError when singular -> caller restarts
        # y_T expresses shard T over [acc rows; replacement rows].
        mix: Dict[int, np.ndarray] = {}
        for target in self.targets:
            mix[target] = gf_mat_mul(
                self.code.matrix[target][None, :].astype(np.uint8), inv
            )[0]
        old_acc = {t_: a.copy() for t_, a in self._acc.items()}
        old_rows = {t_: r.copy() for t_, r in self._rows.items()}
        for target in self.targets:
            y = mix[target]
            if old_acc:
                acc = np.zeros(self._chunk_size, dtype=np.uint8)
                for j, src in enumerate(self.targets):
                    gf_mul_add_scalar(acc, int(y[j]), old_acc[src])
                self._acc[target] = acc
            row = np.zeros(k, dtype=np.uint8)
            for j, src in enumerate(self.targets):
                row ^= gf_mul(y[j], old_rows[src])
            self._rows[target] = row
            self._coeffs[target] = {r: int(y[t + idx]) for idx, r in enumerate(reads)}
        self._pending = set(reads)
        self.survivor_ids = sorted(set(self._fed) | set(reads))
        return self

    def restart(self, new_survivors: Sequence[int]) -> "PartialDecoder":
        """Discard all progress and start over on a fresh k-survivor set.

        The fallback when :meth:`replan` is infeasible (accumulator rows
        rank-deficient). Every previously fed chunk must be read again.
        """
        survivors = [int(s) for s in new_survivors]
        overlap = set(survivors) & set(self.targets)
        if overlap:
            raise CodingError(f"survivors {sorted(overlap)} cannot also be targets")
        self._coeffs = {
            t: reconstruction_coefficients(self.code, survivors, t)
            for t in self.targets
        }
        self.survivor_ids = survivors
        self._pending = set(survivors)
        self._acc = {}
        self._fed = []
        self._rows = {
            t: np.zeros(self.code.k, dtype=np.uint8) for t in self.targets
        }
        return self

    # ----------------------------------------------------------- checkpointing
    def to_state(self) -> Dict[str, object]:
        """Snapshot the full decoder state for crash-consistent journaling.

        Everything needed to resume mid-stripe is captured: the survivor /
        pending / fed bookkeeping, the per-target coefficient tables and
        accumulator rows (both may have been rewritten by :meth:`replan`,
        so they cannot be recomputed from the constructor arguments), and
        the accumulator chunks themselves. Accumulators are returned as
        uint8 arrays under ``"acc"`` so the journal can frame them as raw
        binary blobs instead of inflating them through JSON.
        """
        return {
            "survivor_ids": list(self.survivor_ids),
            "targets": list(self.targets),
            "chunk_size": self._chunk_size,
            "pending": sorted(self._pending),
            "fed": list(self._fed),
            "fed_count": self._fed_count,
            "coeffs": {
                str(t): {str(s): int(c) for s, c in m.items()}
                for t, m in self._coeffs.items()
            },
            "rows": {
                str(t): [int(x) for x in row] for t, row in self._rows.items()
            },
            "acc": {str(t): a.copy() for t, a in self._acc.items()},
        }

    @classmethod
    def from_state(cls, code: "RSCode", state: Mapping[str, object]) -> "PartialDecoder":
        """Rebuild a decoder from :meth:`to_state` output.

        Bypasses ``__init__`` deliberately: after a :meth:`replan` the
        journaled ``survivor_ids`` can exceed ``k`` entries (fed + new
        reads) and the coefficient tables are the re-mixed ones, neither of
        which the constructor's recomputation path can represent.
        """
        pd = cls.__new__(cls)
        pd.code = code
        pd.survivor_ids = [int(s) for s in state["survivor_ids"]]  # type: ignore[union-attr]
        pd.targets = [int(t) for t in state["targets"]]  # type: ignore[union-attr]
        size = state["chunk_size"]
        pd._chunk_size = None if size is None else int(size)  # type: ignore[arg-type]
        pd._pending = {int(s) for s in state["pending"]}  # type: ignore[union-attr]
        pd._fed = [int(s) for s in state["fed"]]  # type: ignore[union-attr]
        pd._fed_count = int(state["fed_count"])  # type: ignore[arg-type]
        pd._coeffs = {
            int(t): {int(s): int(c) for s, c in m.items()}
            for t, m in state["coeffs"].items()  # type: ignore[union-attr]
        }
        pd._rows = {
            int(t): np.asarray(row, dtype=np.uint8).copy()
            for t, row in state["rows"].items()  # type: ignore[union-attr]
        }
        pd._acc = {
            int(t): np.asarray(a, dtype=np.uint8).copy()
            for t, a in state["acc"].items()  # type: ignore[union-attr]
        }
        return pd

    # ---------------------------------------------------------------- result
    def result(self, target: int) -> np.ndarray:
        """Return the rebuilt shard for ``target`` (all survivors must be fed)."""
        if target not in self._coeffs:
            raise CodingError(f"{target} is not a declared target")
        if self._pending:
            raise CodingError(
                f"decode incomplete; survivors still pending: {self.pending}"
            )
        if target not in self._acc:
            # Possible only if chunk_size was never learned (feed never called
            # with this configuration) — guarded by the pending check above.
            raise CodingError("no data was fed")
        return self._acc[target]

    def results(self) -> Dict[int, np.ndarray]:
        """All rebuilt shards keyed by target index."""
        return {t: self.result(t) for t in self.targets}
