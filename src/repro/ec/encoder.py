"""Systematic (n, k) Reed-Solomon codec.

:class:`RSCode` is the Python analogue of the Golang ``reedsolomon``
encoder used by the paper's prototype: ``split`` chops raw bytes into k
equal shards (zero-padded), ``encode`` produces the m parity shards,
``verify`` checks consistency, and ``join`` reassembles the original bytes.
All shard math is vectorised GF(2^8) (see :mod:`repro.gf`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import CodingError, ConfigurationError
from repro.gf import gf_mul_add_scalar, gf_rs_encoding_matrix
from repro.ec import decoder


class RSCode:
    """A systematic (n, k) Reed-Solomon code over GF(2^8).

    Args:
        n: total shards per stripe (data + parity), 2 <= n <= 256.
        k: data shards per stripe, 1 <= k < n.
        matrix_style: ``"vandermonde"`` (default, klauspost-compatible
            construction) or ``"cauchy"``.

    The encoding matrix is n x k with an identity top block, so shard j for
    j < k *is* data shard j (systematic), and parity shard j >= k is
    ``XOR_i M[j, i] * D_i`` — Equation (1) of the paper.
    """

    def __init__(self, n: int, k: int, matrix_style: str = "vandermonde") -> None:
        if not isinstance(n, int) or not isinstance(k, int):
            raise ConfigurationError(f"n and k must be ints, got {n!r}, {k!r}")
        if not (0 < k < n):
            raise ConfigurationError(f"require 0 < k < n, got n={n}, k={k}")
        if n > 256:
            raise ConfigurationError(f"GF(2^8) RS supports n <= 256, got {n}")
        self.n = n
        self.k = k
        self.m = n - k
        self.matrix_style = matrix_style
        self.matrix = gf_rs_encoding_matrix(n, k, style=matrix_style)

    def __repr__(self) -> str:
        return f"RSCode(n={self.n}, k={self.k}, style={self.matrix_style!r})"

    # ------------------------------------------------------------------ split
    def split(self, data: bytes, chunk_size: Optional[int] = None) -> List[np.ndarray]:
        """Split raw bytes into k equal-size uint8 shards (zero padded).

        Mirrors ``Encoder.Split``. If ``chunk_size`` is given, each shard is
        exactly that long and ``data`` must fit in ``k * chunk_size`` bytes;
        otherwise the shard size is ``ceil(len(data) / k)``.
        """
        if len(data) == 0:
            raise CodingError("cannot split empty data")
        if chunk_size is None:
            chunk_size = -(-len(data) // self.k)
        if len(data) > self.k * chunk_size:
            raise CodingError(
                f"data of {len(data)} bytes exceeds k*chunk_size = {self.k * chunk_size}"
            )
        padded = np.zeros(self.k * chunk_size, dtype=np.uint8)
        padded[: len(data)] = np.frombuffer(data, dtype=np.uint8)
        return [padded[i * chunk_size : (i + 1) * chunk_size].copy() for i in range(self.k)]

    def join(self, data_shards: Sequence[np.ndarray], size: int) -> bytes:
        """Reassemble the original ``size`` bytes from the k data shards."""
        if len(data_shards) != self.k:
            raise CodingError(f"join needs k={self.k} data shards, got {len(data_shards)}")
        flat = np.concatenate([np.asarray(s, dtype=np.uint8) for s in data_shards])
        if size > flat.size:
            raise CodingError(f"requested {size} bytes but shards hold only {flat.size}")
        return flat[:size].tobytes()

    # ----------------------------------------------------------------- encode
    def encode(self, data_shards: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Compute the m parity shards from the k data shards.

        Returns the full list of n shards (data shards are shared, not
        copied; parity shards are fresh arrays).
        """
        shards = self._check_data_shards(data_shards)
        chunk_size = shards[0].size
        parity = [np.zeros(chunk_size, dtype=np.uint8) for _ in range(self.m)]
        for row in range(self.m):
            coeffs = self.matrix[self.k + row]
            acc = parity[row]
            for i in range(self.k):
                gf_mul_add_scalar(acc, int(coeffs[i]), shards[i])
        return list(shards) + parity

    def verify(self, shards: Sequence[Optional[np.ndarray]]) -> bool:
        """Check that parity shards are consistent with data shards.

        Any missing (None) shard makes verification fail.
        """
        if len(shards) != self.n:
            raise CodingError(f"verify needs n={self.n} shards, got {len(shards)}")
        if any(s is None for s in shards):
            return False
        data = [np.asarray(s, dtype=np.uint8) for s in shards[: self.k]]
        recomputed = self.encode(data)
        return all(
            np.array_equal(recomputed[self.k + j], np.asarray(shards[self.k + j], dtype=np.uint8))
            for j in range(self.m)
        )

    # ------------------------------------------------------------ reconstruct
    def reconstruct(
        self,
        shards: Sequence[Optional[np.ndarray]],
        targets: Optional[Sequence[int]] = None,
    ) -> List[np.ndarray]:
        """Rebuild missing shards (``None`` entries) from any k survivors.

        Mirrors ``Encoder.Reconstruct``. ``targets`` restricts which missing
        shard indices to rebuild (default: all). Returns the full shard list
        with requested holes filled.
        """
        return decoder.reconstruct(self, shards, targets)

    # ------------------------------------------------------------------ utils
    def _check_data_shards(self, data_shards: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(data_shards) != self.k:
            raise CodingError(f"expected k={self.k} data shards, got {len(data_shards)}")
        shards = [np.asarray(s, dtype=np.uint8) for s in data_shards]
        sizes = {s.size for s in shards}
        if len(sizes) != 1:
            raise CodingError(f"data shards have differing sizes: {sorted(sizes)}")
        if shards[0].ndim != 1:
            raise CodingError("shards must be 1-D uint8 arrays")
        return shards
