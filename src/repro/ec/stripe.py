"""Stripe and chunk metadata.

A *stripe* is one codeword of an (n, k) RS code: k data chunks plus
m = n - k parity chunks, each placed on a distinct disk. These dataclasses
carry only placement metadata — chunk *bytes* live in the HDSS store and
only pass through the codec during encode/repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class ChunkId:
    """Globally unique chunk address: (stripe index, shard index).

    ``shard_index`` runs 0..n-1; indices < k are data shards, the rest are
    parity shards (systematic layout).
    """

    stripe_index: int
    shard_index: int

    def __str__(self) -> str:
        return f"S{self.stripe_index},{self.shard_index}"


@dataclass(frozen=True)
class Stripe:
    """Placement record of one stripe: which disk holds each shard.

    Attributes:
        index: stripe index within the volume.
        n: total shards per stripe.
        k: data shards per stripe.
        disks: tuple of n disk ids; ``disks[j]`` holds shard j.
    """

    index: int
    n: int
    k: int
    disks: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not (0 < self.k < self.n):
            raise ConfigurationError(f"stripe requires 0 < k < n, got n={self.n} k={self.k}")
        if len(self.disks) != self.n:
            raise ConfigurationError(
                f"stripe {self.index} placement has {len(self.disks)} disks, expected n={self.n}"
            )
        if len(set(self.disks)) != self.n:
            raise ConfigurationError(
                f"stripe {self.index} places multiple shards on one disk: {self.disks}"
            )

    @property
    def m(self) -> int:
        """Number of parity shards."""
        return self.n - self.k

    def chunk_ids(self) -> List[ChunkId]:
        """All n chunk ids of this stripe in shard order."""
        return [ChunkId(self.index, j) for j in range(self.n)]

    def shard_on_disk(self, disk_id: int) -> "int | None":
        """Shard index stored on ``disk_id``, or None if the stripe skips it."""
        try:
            return self.disks.index(disk_id)
        except ValueError:
            return None

    def surviving_shards(self, failed_disks: Sequence[int]) -> List[int]:
        """Shard indices whose disks are not in ``failed_disks``."""
        failed = set(failed_disks)
        return [j for j, d in enumerate(self.disks) if d not in failed]

    def lost_shards(self, failed_disks: Sequence[int]) -> List[int]:
        """Shard indices whose disks are in ``failed_disks``."""
        failed = set(failed_disks)
        return [j for j, d in enumerate(self.disks) if d in failed]


@dataclass
class StripeLayout:
    """An ordered collection of stripes plus per-disk *stripe sets*.

    The *stripe set* of a disk (paper §4.4) is the list of stripes with a
    shard on that disk; cooperative multi-disk repair unions these sets.
    """

    stripes: List[Stripe] = field(default_factory=list)
    _stripe_sets: Dict[int, List[int]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for stripe in self.stripes:
            self._index_stripe(stripe)

    def _index_stripe(self, stripe: Stripe) -> None:
        for disk_id in stripe.disks:
            self._stripe_sets.setdefault(disk_id, []).append(stripe.index)

    def add(self, stripe: Stripe) -> None:
        """Append a stripe and update the per-disk stripe sets."""
        if stripe.index != len(self.stripes):
            raise ConfigurationError(
                f"stripe index {stripe.index} does not match position {len(self.stripes)}"
            )
        self.stripes.append(stripe)
        self._index_stripe(stripe)

    def __len__(self) -> int:
        return len(self.stripes)

    def __iter__(self) -> Iterator[Stripe]:
        return iter(self.stripes)

    def __getitem__(self, index: int) -> Stripe:
        return self.stripes[index]

    def stripe_set(self, disk_id: int) -> List[int]:
        """Stripe indices stored (in part) on ``disk_id``."""
        return list(self._stripe_sets.get(disk_id, []))

    def stripes_touching(self, disk_ids: Sequence[int]) -> List[int]:
        """Union of stripe sets of ``disk_ids``, deduplicated and sorted.

        This is exactly the cooperative repair's minimal stripe collection
        (paper Figure 6).
        """
        union: set = set()
        for disk_id in disk_ids:
            union.update(self._stripe_sets.get(disk_id, ()))
        return sorted(union)

    def disks(self) -> List[int]:
        """All disk ids referenced by any stripe."""
        return sorted(self._stripe_sets)

    def remap_shard(self, stripe_index: int, shard_index: int, new_disk: int) -> Stripe:
        """Point one shard at a new disk (post-repair placement commit).

        Replaces the stripe record and fixes the per-disk stripe sets.
        Returns the new stripe record.

        Raises:
            ConfigurationError: if ``new_disk`` already holds another shard
                of this stripe (placement must stay one-shard-per-disk).
        """
        stripe = self.stripes[stripe_index]
        if not 0 <= shard_index < stripe.n:
            raise ConfigurationError(
                f"shard {shard_index} out of range for stripe {stripe_index}"
            )
        old_disk = stripe.disks[shard_index]
        if new_disk == old_disk:
            return stripe
        if new_disk in stripe.disks:
            raise ConfigurationError(
                f"disk {new_disk} already holds a shard of stripe {stripe_index}"
            )
        disks = list(stripe.disks)
        disks[shard_index] = new_disk
        new_stripe = Stripe(index=stripe.index, n=stripe.n, k=stripe.k, disks=tuple(disks))
        self.stripes[stripe_index] = new_stripe
        old_set = self._stripe_sets.get(old_disk, [])
        if stripe_index in old_set:
            old_set.remove(stripe_index)
        self._stripe_sets.setdefault(new_disk, []).append(stripe_index)
        return new_stripe
