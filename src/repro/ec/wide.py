"""Wide-stripe Reed-Solomon over GF(2^16): n up to 65536 shards.

ECWide-class deployments use stripes far wider than GF(2^8)'s 256-shard
ceiling. :class:`WideRSCode` mirrors :class:`~repro.ec.encoder.RSCode`'s
API over :data:`~repro.gf.bigfield.GF65536`; shard buffers are uint16
arrays (two bytes per symbol — ``split``/``join`` handle the byte<->symbol
packing, padding odd-length data).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import CodingError, ConfigurationError, InsufficientShardsError
from repro.gf.bigfield import GF65536, BinaryField


class WideRSCode:
    """Systematic (n, k) RS over a configurable binary field (default 2^16)."""

    def __init__(self, n: int, k: int, field: BinaryField = GF65536) -> None:
        if not isinstance(n, int) or not isinstance(k, int):
            raise ConfigurationError(f"n and k must be ints, got {n!r}, {k!r}")
        if not (0 < k < n):
            raise ConfigurationError(f"require 0 < k < n, got n={n}, k={k}")
        if n > field.order:
            raise ConfigurationError(
                f"GF(2^{field.bits}) supports n <= {field.order}, got {n}"
            )
        self.n = n
        self.k = k
        self.m = n - k
        self.field = field
        self.matrix = field.rs_encoding_matrix(n, k)

    def __repr__(self) -> str:
        return f"WideRSCode(n={self.n}, k={self.k}, field=GF(2^{self.field.bits}))"

    # ------------------------------------------------------------------ split
    def split(self, data: bytes, chunk_symbols: Optional[int] = None) -> List[np.ndarray]:
        """Split bytes into k equal shards of field symbols (zero padded)."""
        if len(data) == 0:
            raise CodingError("cannot split empty data")
        symbol_bytes = self.field.dtype().itemsize
        total_symbols = -(-len(data) // symbol_bytes)
        if chunk_symbols is None:
            chunk_symbols = -(-total_symbols // self.k)
        if total_symbols > self.k * chunk_symbols:
            raise CodingError(
                f"data needs {total_symbols} symbols > k*chunk_symbols = {self.k * chunk_symbols}"
            )
        padded = np.zeros(self.k * chunk_symbols * symbol_bytes, dtype=np.uint8)
        padded[: len(data)] = np.frombuffer(data, dtype=np.uint8)
        symbols = padded.view(self.field.dtype)
        return [
            symbols[i * chunk_symbols : (i + 1) * chunk_symbols].copy()
            for i in range(self.k)
        ]

    def join(self, data_shards: Sequence[np.ndarray], size: int) -> bytes:
        """Reassemble the original ``size`` bytes from the k data shards."""
        if len(data_shards) != self.k:
            raise CodingError(f"join needs k={self.k} shards, got {len(data_shards)}")
        flat = np.concatenate([np.asarray(s, dtype=self.field.dtype) for s in data_shards])
        raw = flat.view(np.uint8)
        if size > raw.size:
            raise CodingError(f"requested {size} bytes but shards hold {raw.size}")
        return raw[:size].tobytes()

    # ----------------------------------------------------------------- encode
    def encode(self, data_shards: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(data_shards) != self.k:
            raise CodingError(f"expected k={self.k} shards, got {len(data_shards)}")
        shards = [np.asarray(s, dtype=self.field.dtype) for s in data_shards]
        sizes = {s.size for s in shards}
        if len(sizes) != 1:
            raise CodingError(f"shards have differing sizes: {sorted(sizes)}")
        parity = [np.zeros(shards[0].size, dtype=self.field.dtype) for _ in range(self.m)]
        for row in range(self.m):
            coeffs = self.matrix[self.k + row]
            for i in range(self.k):
                self.field.mul_add_scalar(parity[row], int(coeffs[i]), shards[i])
        return list(shards) + parity

    # ------------------------------------------------------------ reconstruct
    def reconstruct(
        self, shards: Sequence[Optional[np.ndarray]]
    ) -> List[np.ndarray]:
        """Rebuild every missing shard from any k survivors."""
        if len(shards) != self.n:
            raise CodingError(f"expected n={self.n} shards, got {len(shards)}")
        present = [j for j, s in enumerate(shards) if s is not None]
        missing = [j for j, s in enumerate(shards) if s is None]
        if not missing:
            return [np.asarray(s, dtype=self.field.dtype) for s in shards]
        if len(present) < self.k:
            raise InsufficientShardsError(
                f"only {len(present)} of k={self.k} shards survive"
            )
        sources = present[: self.k]
        decode = self.field.mat_inv(self.matrix[sources])
        bufs = [np.asarray(shards[j], dtype=self.field.dtype) for j in sources]
        size = bufs[0].size

        data: List[np.ndarray] = []
        for i in range(self.k):
            if shards[i] is not None:
                data.append(np.asarray(shards[i], dtype=self.field.dtype))
                continue
            acc = np.zeros(size, dtype=self.field.dtype)
            for col, buf in enumerate(bufs):
                self.field.mul_add_scalar(acc, int(decode[i, col]), buf)
            data.append(acc)
        full = self.encode(data)
        out = [
            np.asarray(s, dtype=self.field.dtype) if s is not None else full[j]
            for j, s in enumerate(shards)
        ]
        return out
