"""Azure-style Locally Repairable Codes (LRC) — the related-work baseline.

The paper's related work (§6) contrasts partial stripe repair with
*locally repairable codes* [14, 17, 25, 32], which attack repair cost at
the code level: the k data chunks are split into ``l`` local groups, each
protected by one XOR *local parity*, plus ``g`` RS *global parities*.
A single lost data chunk is then rebuilt from its group's ``k/l`` peers
instead of k survivors — less I/O, at the price of extra storage overhead.

:class:`LRCCode` implements LRC(k, l, g) with the standard decoding
ladder:

1. single data-chunk failure → local XOR repair (reads ``k/l`` chunks);
2. local-parity failure → re-encode from its group;
3. anything heavier → global decode through the underlying RS code over
   the k data chunks and g global parities.

Shard layout: ``[D_0..D_{k-1} | L_0..L_{l-1} | G_0..G_{g-1}]``.

This gives the benchmark suite a second axis: HD-PSR (schedule-level) vs
LRC (code-level) repair acceleration — and they compose, since LRC local
repairs are just smaller stripes for the PSR scheduler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.ec.encoder import RSCode
from repro.errors import CodingError, ConfigurationError, InsufficientShardsError
from repro.gf import gf_independent_rows, gf_mat_inv, gf_mul_add_scalar


class LRCCode:
    """An (k, l, g) locally repairable code over GF(2^8).

    Args:
        k: data shards (must be divisible by ``l``).
        l: number of local groups / local parities.
        g: number of global parities.

    Fault tolerance: any ``g + 1`` erasures are always decodable (g global
    parities + the locals' one-per-group coverage), matching Azure LRC's
    guarantees for the patterns this implementation accepts.
    """

    def __init__(self, k: int, l: int, g: int) -> None:
        for name, value in (("k", k), ("l", l), ("g", g)):
            if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
                raise ConfigurationError(f"{name} must be a positive int, got {value!r}")
        if k % l:
            raise ConfigurationError(f"k={k} must be divisible by l={l} groups")
        self.k = k
        self.l = l
        self.g = g
        self.group_size = k // l
        self.n = k + l + g
        # Global parities come from a systematic RS(k+g, k) code's parity
        # rows. Cauchy construction: combined with the XOR locals it keeps
        # every (g+1)-erasure pattern decodable (incl. a whole group) and
        # ~85% of (g+2)-patterns for LRC(6,2,2) — matching Azure LRC's
        # published recoverability; the Vandermonde rows lose the
        # whole-group pattern.
        self._rs = RSCode(k + g, k, matrix_style="cauchy")
        self.matrix = self._full_matrix()

    def _full_matrix(self) -> np.ndarray:
        """The n x k generator: identity, local XOR rows, RS parity rows."""
        rows = np.zeros((self.n, self.k), dtype=np.uint8)
        rows[: self.k] = np.eye(self.k, dtype=np.uint8)
        for group in range(self.l):
            for idx in self.group_members(group):
                rows[self.k + group, idx] = 1
        rows[self.k + self.l :] = self._rs.matrix[self.k :]
        return rows

    # ------------------------------------------------------------- layout
    def group_of(self, data_index: int) -> int:
        """Local group of data shard ``data_index``."""
        if not 0 <= data_index < self.k:
            raise CodingError(f"data index {data_index} out of range [0, {self.k})")
        return data_index // self.group_size

    def group_members(self, group: int) -> List[int]:
        """Data shard indices of ``group``."""
        if not 0 <= group < self.l:
            raise CodingError(f"group {group} out of range [0, {self.l})")
        start = group * self.group_size
        return list(range(start, start + self.group_size))

    def local_parity_index(self, group: int) -> int:
        """Shard index of group ``group``'s local parity."""
        if not 0 <= group < self.l:
            raise CodingError(f"group {group} out of range [0, {self.l})")
        return self.k + group

    def global_parity_indices(self) -> List[int]:
        return list(range(self.k + self.l, self.n))

    def shard_kind(self, index: int) -> str:
        """``"data"``, ``"local"``, or ``"global"``."""
        if not 0 <= index < self.n:
            raise CodingError(f"shard {index} out of range [0, {self.n})")
        if index < self.k:
            return "data"
        if index < self.k + self.l:
            return "local"
        return "global"

    @property
    def storage_overhead(self) -> float:
        """n / k — what the locality costs in capacity."""
        return self.n / self.k

    def __repr__(self) -> str:
        return f"LRCCode(k={self.k}, l={self.l}, g={self.g})"

    # ------------------------------------------------------------- encode
    def encode(self, data_shards: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Return all n shards: data, local parities, global parities."""
        if len(data_shards) != self.k:
            raise CodingError(f"expected k={self.k} data shards, got {len(data_shards)}")
        shards = [np.asarray(s, dtype=np.uint8) for s in data_shards]
        sizes = {s.size for s in shards}
        if len(sizes) != 1:
            raise CodingError(f"data shards have differing sizes: {sorted(sizes)}")
        locals_ = []
        for group in range(self.l):
            acc = np.zeros(shards[0].size, dtype=np.uint8)
            for idx in self.group_members(group):
                np.bitwise_xor(acc, shards[idx], out=acc)
            locals_.append(acc)
        globals_ = self._rs.encode(shards)[self.k :]
        return list(shards) + locals_ + globals_

    def verify(self, shards: Sequence[Optional[np.ndarray]]) -> bool:
        """Consistency check across local and global parities."""
        if len(shards) != self.n:
            raise CodingError(f"verify needs n={self.n} shards, got {len(shards)}")
        if any(s is None for s in shards):
            return False
        recomputed = self.encode([np.asarray(s, dtype=np.uint8) for s in shards[: self.k]])
        return all(
            np.array_equal(np.asarray(a, dtype=np.uint8), b)
            for a, b in zip(shards, recomputed)
        )

    # -------------------------------------------------------------- repair
    def repair_plan_for(self, lost: Sequence[int], available: Set[int]) -> Dict[int, List[int]]:
        """Which shards each lost shard's cheapest repair reads.

        Returns ``{lost_shard: [source shards]}``. Single losses within a
        group use the local XOR path (``group_size`` sources); everything
        else falls back to global decoding (k sources from data + global
        parities, plus locally-repairable substitutions).

        Raises:
            InsufficientShardsError: if the pattern is undecodable.
        """
        lost_set = set(lost)
        plan: Dict[int, List[int]] = {}
        for shard in sorted(lost_set):
            kind = self.shard_kind(shard)
            if kind in ("data", "local"):
                group = self.group_of(shard) if kind == "data" else shard - self.k
                circle = set(self.group_members(group)) | {self.local_parity_index(group)}
                sources = circle - {shard}
                if sources <= available and not (sources & lost_set):
                    plan[shard] = sorted(sources)
                    continue
            plan[shard] = self._global_sources(lost_set, available)
        return plan

    def _global_sources(self, lost: Set[int], available: Set[int]) -> List[int]:
        """k sources for a general decode, using any shard kind.

        Prefers data and global-parity rows (cheapest conceptually) but
        pulls in local parities whenever they are needed for rank — that
        is LRC's extra decodability beyond its embedded RS code.
        """
        preferred = [
            j for j in list(range(self.k)) + self.global_parity_indices()
            if j in available and j not in lost
        ]
        fallback = [
            j for j in range(self.k, self.k + self.l)
            if j in available and j not in lost
        ]
        candidates = preferred + fallback
        if len(candidates) < self.k:
            raise InsufficientShardsError(
                f"general decode needs k={self.k} independent shards, "
                f"only {len(candidates)} available"
            )
        try:
            picked = gf_independent_rows(self.matrix[candidates], self.k)
        except CodingError as exc:
            raise InsufficientShardsError(
                f"erasure pattern {sorted(lost)} is undecodable: {exc}"
            ) from exc
        return [candidates[i] for i in picked]

    def reconstruct(
        self, shards: Sequence[Optional[np.ndarray]]
    ) -> List[np.ndarray]:
        """Rebuild every missing shard (local fast-path, then global).

        Raises:
            InsufficientShardsError: pattern exceeds the code's tolerance.
        """
        if len(shards) != self.n:
            raise CodingError(f"expected n={self.n} shards, got {len(shards)}")
        work: List[Optional[np.ndarray]] = [
            None if s is None else np.asarray(s, dtype=np.uint8) for s in shards
        ]

        # Pass 1: local repairs until a fixed point (each may unlock more).
        progress = True
        while progress:
            progress = False
            for shard in range(self.k + self.l):
                if work[shard] is not None:
                    continue
                group = self.group_of(shard) if shard < self.k else shard - self.k
                circle = set(self.group_members(group)) | {self.local_parity_index(group)}
                sources = circle - {shard}
                if all(work[j] is not None for j in sources):
                    acc = np.zeros(work[next(iter(sources))].size, dtype=np.uint8)
                    for j in sources:
                        np.bitwise_xor(acc, work[j], out=acc)
                    work[shard] = acc
                    progress = True

        # Pass 2: general decode over the full generator matrix — any k
        # linearly independent surviving rows (local parities included)
        # recover the data vector.
        missing = [j for j in range(self.n) if work[j] is None]
        if missing:
            available = {j for j in range(self.n) if work[j] is not None}
            sources = self._global_sources(set(missing), available)
            decode = gf_mat_inv(self.matrix[sources])
            size = work[sources[0]].size
            data: List[np.ndarray] = []
            for i in range(self.k):
                if work[i] is not None:
                    data.append(work[i])
                    continue
                acc = np.zeros(size, dtype=np.uint8)
                for col, src in enumerate(sources):
                    gf_mul_add_scalar(acc, int(decode[i, col]), work[src])
                data.append(acc)
            full = self.encode(data)
            for j in missing:
                work[j] = full[j]
        return work  # type: ignore[return-value]

    def repair_cost(self, lost: Sequence[int]) -> int:
        """Chunks read to repair ``lost`` assuming everything else survives.

        The LRC selling point in one number: 1 lost data chunk costs
        ``k/l`` reads instead of RS's ``k``.
        """
        available = set(range(self.n)) - set(lost)
        plan = self.repair_plan_for(lost, available)
        sources: Set[int] = set()
        for src in plan.values():
            sources.update(src)
        return len(sources)
