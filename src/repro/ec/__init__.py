"""Reed-Solomon erasure coding with partial (incremental) reconstruction.

Mirrors the two modules of the paper's Golang prototype:

* the *encoding module* — :class:`RSCode` wraps ``split`` / ``encode`` /
  ``join`` (the ``Encoder.Split`` / ``Encoder.Encode`` APIs);
* the *repair module*'s coding primitive — :class:`PartialDecoder` is the
  Python analogue of the paper's ``Encoder.RecoverWithSomeShards``
  extension: it folds surviving shards into running partial sums one repair
  round at a time, so only ``P_a`` chunks (plus the accumulators) ever live
  in memory.
"""

from repro.ec.stripe import ChunkId, Stripe, StripeLayout
from repro.ec.encoder import RSCode
from repro.ec.decoder import decode_matrix_for, reconstruct
from repro.ec.lrc import LRCCode
from repro.ec.partial import PartialDecoder
from repro.ec.wide import WideRSCode

__all__ = [
    "ChunkId",
    "Stripe",
    "StripeLayout",
    "RSCode",
    "LRCCode",
    "WideRSCode",
    "decode_matrix_for",
    "reconstruct",
    "PartialDecoder",
]
