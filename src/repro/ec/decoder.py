"""Full-stripe RS reconstruction (the FSR coding primitive).

Given any k surviving shards of an (n, k) stripe, every shard — data or
parity — is a known linear combination of the k data shards. Selecting the
k surviving rows of the encoding matrix gives a square system; inverting it
recovers the data shards, and re-encoding recovers lost parity shards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import CodingError, InsufficientShardsError
from repro.gf import gf_mat_inv, gf_mat_mul, gf_mul_add_scalar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ec.encoder import RSCode


def decode_matrix_for(code: "RSCode", survivor_ids: Sequence[int]) -> np.ndarray:
    """Return the k x k matrix mapping the chosen k survivors to data shards.

    ``survivor_ids`` must be k distinct shard indices in [0, n). Row i of
    the result gives the coefficients that combine the k survivor shards
    into data shard i:
    ``D_i = XOR_j out[i, j] * shard[survivor_ids[j]]``.
    """
    if len(survivor_ids) != code.k:
        raise InsufficientShardsError(
            f"need exactly k={code.k} survivors to build a decode matrix, got {len(survivor_ids)}"
        )
    ids = list(survivor_ids)
    if len(set(ids)) != len(ids):
        raise CodingError(f"duplicate survivor indices: {ids}")
    if any(not 0 <= j < code.n for j in ids):
        raise CodingError(f"survivor index out of range [0, {code.n}): {ids}")
    sub = code.matrix[ids, :]
    return gf_mat_inv(sub)


def reconstruction_coefficients(
    code: "RSCode", survivor_ids: Sequence[int], target: int
) -> Dict[int, int]:
    """Per-survivor coefficients that rebuild shard ``target``.

    Returns ``{survivor_id: coeff}`` such that
    ``shard[target] = XOR coeff * shard[survivor_id]``. This is the form
    the partial decoder consumes: each repair round folds its P_a chunks
    into the accumulator with exactly these scalars (Equation (2)).
    """
    decode = decode_matrix_for(code, survivor_ids)
    if not 0 <= target < code.n:
        raise CodingError(f"target shard {target} out of range [0, {code.n})")
    if target < code.k:
        row = decode[target]
    else:
        # parity row: (encoding row for target) @ decode
        row = gf_mat_mul(code.matrix[target][None, :], decode)[0]
    return {int(sid): int(coeff) for sid, coeff in zip(survivor_ids, row)}


def reconstruct(
    code: "RSCode",
    shards: Sequence[Optional[np.ndarray]],
    targets: Optional[Sequence[int]] = None,
) -> List[np.ndarray]:
    """Rebuild missing shards from any k survivors (full-stripe decode).

    Args:
        code: the RS code.
        shards: length-n list; ``None`` marks a missing shard.
        targets: which missing shard indices to rebuild (default all).

    Returns:
        The full shard list with requested holes filled in.

    Raises:
        InsufficientShardsError: fewer than k shards present.
        CodingError: malformed input.
    """
    if len(shards) != code.n:
        raise CodingError(f"expected n={code.n} shards, got {len(shards)}")
    present = [j for j, s in enumerate(shards) if s is not None]
    missing = [j for j, s in enumerate(shards) if s is None]
    if targets is None:
        targets = missing
    else:
        targets = list(targets)
        bad = [t for t in targets if shards[t] is not None]
        if bad:
            raise CodingError(f"targets {bad} are not missing")
    if not targets:
        return [np.asarray(s, dtype=np.uint8) for s in shards]  # nothing to do
    if len(present) < code.k:
        raise InsufficientShardsError(
            f"only {len(present)} of k={code.k} shards survive; stripe unrecoverable"
        )

    survivor_ids = present[: code.k]
    survivors = [np.asarray(shards[j], dtype=np.uint8) for j in survivor_ids]
    sizes = {s.size for s in survivors}
    if len(sizes) != 1:
        raise CodingError(f"surviving shards have differing sizes: {sorted(sizes)}")
    chunk_size = survivors[0].size

    out: List[Optional[np.ndarray]] = [
        None if s is None else np.asarray(s, dtype=np.uint8) for s in shards
    ]
    for target in targets:
        coeffs = reconstruction_coefficients(code, survivor_ids, target)
        acc = np.zeros(chunk_size, dtype=np.uint8)
        for sid, shard in zip(survivor_ids, survivors):
            gf_mul_add_scalar(acc, coeffs[sid], shard)
        out[target] = acc
    # Only requested targets were rebuilt; other holes stay None.
    return out  # type: ignore[return-value]
