"""GF(2^8) arithmetic substrate for Reed-Solomon coding.

Pure-NumPy implementation of the field the Golang ``reedsolomon`` library
uses: GF(2^8) with the primitive polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11D). Multiplication and division are exp/log table lookups, vectorised
over whole chunk buffers so the data path has no Python-level inner loops.
"""

from repro.gf.tables import (
    FIELD_SIZE,
    GENERATOR,
    PRIMITIVE_POLY,
    exp_table,
    log_table,
)
from repro.gf.arithmetic import (
    gf_add,
    gf_sub,
    gf_mul,
    gf_div,
    gf_pow,
    gf_inv,
    gf_mul_scalar,
    gf_mul_add_scalar,
)
from repro.gf.bigfield import GF256, GF65536, BinaryField
from repro.gf.matrix import (
    gf_identity,
    gf_independent_rows,
    gf_mat_mul,
    gf_mat_vec,
    gf_mat_inv,
    gf_vandermonde,
    gf_cauchy,
    gf_rs_encoding_matrix,
    gf_mat_rank,
)

__all__ = [
    "FIELD_SIZE",
    "GENERATOR",
    "PRIMITIVE_POLY",
    "exp_table",
    "log_table",
    "gf_add",
    "gf_sub",
    "gf_mul",
    "gf_div",
    "gf_pow",
    "gf_inv",
    "gf_mul_scalar",
    "gf_mul_add_scalar",
    "BinaryField",
    "GF256",
    "GF65536",
    "gf_identity",
    "gf_independent_rows",
    "gf_mat_mul",
    "gf_mat_vec",
    "gf_mat_inv",
    "gf_vandermonde",
    "gf_cauchy",
    "gf_rs_encoding_matrix",
    "gf_mat_rank",
]
