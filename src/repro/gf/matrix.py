"""Matrix algebra over GF(2^8): products, inversion, RS encoding matrices.

Matrices are small (n x k with n <= a few hundred), so clarity wins over
micro-optimisation here; the chunk-buffer hot path lives in
:mod:`repro.gf.arithmetic`. Inversion is Gauss-Jordan with partial pivoting
(any non-zero pivot works in a field).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodingError
from repro.gf.arithmetic import gf_inv, gf_mul, gf_pow


def gf_identity(size: int) -> np.ndarray:
    """The size x size identity matrix over GF(2^8)."""
    return np.eye(size, dtype=np.uint8)


def gf_mat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8).

    Computed as an XOR-reduction of broadcast element products:
    ``out[i, j] = XOR_t a[i, t] * b[t, j]``.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    # products[i, t, j] = a[i, t] * b[t, j]
    products = gf_mul(a[:, :, None], b[None, :, :])
    return np.bitwise_xor.reduce(products, axis=1)


def gf_mat_vec(a: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Matrix-vector product over GF(2^8)."""
    v = np.asarray(v, dtype=np.uint8)
    if v.ndim != 1:
        raise ValueError("v must be 1-D")
    return gf_mat_mul(a, v[:, None])[:, 0]


def gf_mat_inv(m: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination.

    Raises:
        CodingError: if the matrix is singular (decode matrix of a
            non-MDS shard selection, which cannot happen for RS with
            distinct evaluation points but is guarded anyway).
    """
    m = np.asarray(m, dtype=np.uint8)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"matrix must be square, got {m.shape}")
    size = m.shape[0]
    work = np.concatenate([m.copy(), gf_identity(size)], axis=1)
    for col in range(size):
        pivot_rows = np.nonzero(work[col:, col])[0]
        if pivot_rows.size == 0:
            raise CodingError(f"singular matrix (no pivot in column {col})")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
        inv_pivot = gf_inv(work[col, col])
        work[col] = gf_mul(work[col], inv_pivot)
        # Eliminate the column from every other row in one vectorised sweep.
        factors = work[:, col].copy()
        factors[col] = 0
        work ^= gf_mul(factors[:, None], work[col][None, :])
    return work[:, size:].copy()


def gf_mat_rank(m: np.ndarray) -> int:
    """Rank of a matrix over GF(2^8) (row echelon elimination)."""
    work = np.asarray(m, dtype=np.uint8).copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        if rank == rows:
            break
        pivot_rows = np.nonzero(work[rank:, col])[0]
        if pivot_rows.size == 0:
            continue
        pivot = rank + int(pivot_rows[0])
        if pivot != rank:
            work[[rank, pivot]] = work[[pivot, rank]]
        inv_pivot = gf_inv(work[rank, col])
        work[rank] = gf_mul(work[rank], inv_pivot)
        factors = work[:, col].copy()
        factors[rank] = 0
        work ^= gf_mul(factors[:, None], work[rank][None, :])
        rank += 1
    return rank


def gf_independent_rows(m: np.ndarray, need: int) -> "list[int]":
    """Indices of the first ``need`` linearly independent rows of ``m``.

    Greedy from the top: a row is kept iff it is independent of the rows
    already kept (Gaussian elimination over GF(2^8)).

    Raises:
        CodingError: if fewer than ``need`` independent rows exist.
    """
    m = np.asarray(m, dtype=np.uint8)
    rows, cols = m.shape
    if need > cols:
        raise CodingError(f"cannot find {need} independent rows in a {cols}-column matrix")
    kept: "list[int]" = []
    # Reduced basis of the kept rows; pivot_cols[i] is basis row i's pivot.
    basis = np.zeros((0, cols), dtype=np.uint8)
    pivot_cols: "list[int]" = []
    for r in range(rows):
        vec = m[r].copy()
        for b, pc in zip(basis, pivot_cols):
            if vec[pc]:
                vec ^= gf_mul(vec[pc], b)
        nz = np.nonzero(vec)[0]
        if nz.size == 0:
            continue
        pc = int(nz[0])
        vec = gf_mul(vec, gf_inv(vec[pc]))
        basis = np.vstack([basis, vec])
        pivot_cols.append(pc)
        kept.append(r)
        if len(kept) == need:
            return kept
    raise CodingError(f"matrix has rank {len(kept)} < required {need}")


def gf_vandermonde(rows: int, cols: int) -> np.ndarray:
    """Raw Vandermonde matrix ``V[i, j] = i ** j`` over GF(2^8)."""
    if rows > 256:
        raise ValueError("GF(2^8) supports at most 256 distinct rows")
    i = np.arange(rows, dtype=np.uint8)[:, None]
    j = np.arange(cols)
    out = np.empty((rows, cols), dtype=np.uint8)
    for col in j:  # cols == k is tiny; per-column gf_pow is vectorised over rows
        out[:, col] = gf_pow(i[:, 0], int(col))
    return out


def gf_cauchy(rows: int, cols: int) -> np.ndarray:
    """Cauchy matrix ``C[i, j] = 1 / (x_i + y_j)`` with x_i = i + cols, y_j = j.

    Every square submatrix of a Cauchy matrix is invertible, which is the
    property RS parity generation needs.
    """
    if rows + cols > 256:
        raise ValueError("rows + cols must be <= 256 for distinct points")
    x = np.arange(cols, cols + rows, dtype=np.uint8)[:, None]
    y = np.arange(cols, dtype=np.uint8)[None, :]
    return gf_inv(np.bitwise_xor(x, y))


def gf_rs_encoding_matrix(n: int, k: int, style: str = "vandermonde") -> np.ndarray:
    """Systematic n x k RS encoding matrix: identity on top, parity below.

    ``style='vandermonde'`` mirrors the klauspost/reedsolomon default: build
    a raw n x k Vandermonde matrix and normalise its top k x k block to the
    identity by right-multiplying with that block's inverse (this preserves
    the MDS property). ``style='cauchy'`` stacks identity over a Cauchy
    block directly.
    """
    if not (0 < k < n):
        raise ValueError(f"require 0 < k < n, got n={n} k={k}")
    if style == "vandermonde":
        raw = gf_vandermonde(n, k)
        top_inv = gf_mat_inv(raw[:k, :k])
        return gf_mat_mul(raw, top_inv)
    if style == "cauchy":
        parity = gf_cauchy(n - k, k)
        return np.concatenate([gf_identity(k), parity], axis=0)
    raise ValueError(f"unknown encoding matrix style {style!r}")
