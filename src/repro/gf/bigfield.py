"""Parametrised binary Galois fields — GF(2^w) for w up to 16.

The chunk-kernel module (:mod:`repro.gf.arithmetic`) is specialised for
GF(2^8), which covers the paper's codes (n <= 256 shards). Wide-stripe
deployments (ECWide-class, k = 128 with large n) can exceed that, so this
module provides a general :class:`BinaryField` with the same table-driven
vectorised arithmetic for any word width up to 16 bits, plus the matrix
helpers a Reed-Solomon codec needs.

``GF65536`` is the ready-made GF(2^16) instance (polynomial 0x1100B, the
standard CCSDS choice); ``GF256`` mirrors the specialised module and is
used to cross-check the two implementations in the test suite.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import CodingError, ConfigurationError

ArrayLike = Union[int, np.ndarray]


class BinaryField:
    """GF(2^w) arithmetic via exp/log tables, vectorised over arrays.

    Args:
        bits: word width w (2..16).
        poly: primitive polynomial including the x^w term.
    """

    def __init__(self, bits: int, poly: int) -> None:
        if not 2 <= bits <= 16:
            raise ConfigurationError(f"bits must be in [2, 16], got {bits}")
        if poly >> bits != 1:
            raise ConfigurationError(
                f"poly 0x{poly:X} must have degree exactly {bits}"
            )
        self.bits = bits
        self.poly = poly
        self.order = 1 << bits            # field size
        self.group = self.order - 1       # multiplicative group order
        self.dtype = np.uint8 if bits <= 8 else np.uint16

        exp = np.zeros(2 * self.group, dtype=self.dtype)
        log = np.zeros(self.order, dtype=np.int64)
        x = 1
        for i in range(self.group):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.order:
                x ^= poly
        if x != 1:
            raise ConfigurationError(
                f"0x{poly:X} is not primitive for GF(2^{bits})"
            )
        exp[self.group :] = exp[: self.group]
        self._exp = exp
        self._log = log

    def __repr__(self) -> str:
        return f"BinaryField(2^{self.bits}, poly=0x{self.poly:X})"

    # --------------------------------------------------------------- scalars
    def _as_elems(self, x: ArrayLike) -> np.ndarray:
        arr = np.asarray(x)
        if arr.dtype != self.dtype:
            if np.any((arr < 0) | (arr >= self.order)):
                raise ValueError(f"elements must lie in [0, {self.order})")
            arr = arr.astype(self.dtype)
        return arr

    def add(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        return np.bitwise_xor(self._as_elems(a), self._as_elems(b))

    def mul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        a_, b_ = self._as_elems(a), self._as_elems(b)
        out = self._exp[self._log[a_] + self._log[b_]]
        zero = (a_ == 0) | (b_ == 0)
        return np.where(zero, self.dtype(0), out).astype(self.dtype)

    def inv(self, a: ArrayLike) -> np.ndarray:
        a_ = self._as_elems(a)
        if np.any(a_ == 0):
            raise ZeroDivisionError("0 has no inverse")
        return self._exp[(self.group - self._log[a_]) % self.group].astype(self.dtype)

    def div(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        a_, b_ = self._as_elems(a), self._as_elems(b)
        if np.any(b_ == 0):
            raise ZeroDivisionError("division by zero")
        out = self._exp[(self._log[a_] - self._log[b_]) % self.group]
        return np.where(a_ == 0, self.dtype(0), out).astype(self.dtype)

    def pow(self, a: ArrayLike, exponent: int) -> np.ndarray:
        a_ = self._as_elems(a)
        if exponent == 0:
            return np.ones_like(a_)
        if exponent < 0:
            return self.pow(self.inv(a_), -exponent)
        la = self._log[a_].astype(np.int64)
        out = self._exp[(la * exponent) % self.group]
        return np.where(a_ == 0, self.dtype(0), out).astype(self.dtype)

    # ---------------------------------------------------------- buffer kernel
    def mul_scalar(self, coeff: int, buf: np.ndarray) -> np.ndarray:
        """Vectorised ``coeff * buf`` over a whole shard buffer."""
        buf_ = self._as_elems(buf)
        if not 0 <= int(coeff) < self.order:
            raise ValueError(f"coefficient {coeff} outside the field")
        if coeff == 0:
            return np.zeros_like(buf_)
        if coeff == 1:
            return buf_.copy()
        lc = int(self._log[coeff])
        out = self._exp[self._log[buf_] + lc].astype(self.dtype)
        out[buf_ == 0] = 0
        return out

    def mul_add_scalar(self, acc: np.ndarray, coeff: int, buf: np.ndarray) -> np.ndarray:
        """In place ``acc ^= coeff * buf``; returns ``acc``."""
        if acc.dtype != self.dtype:
            raise ValueError(f"accumulator must be {self.dtype}")
        if acc.shape != np.shape(buf):
            raise ValueError("shape mismatch")
        if coeff:
            np.bitwise_xor(acc, self.mul_scalar(coeff, buf), out=acc)
        return acc

    # ---------------------------------------------------------------- matrix
    def identity(self, size: int) -> np.ndarray:
        return np.eye(size, dtype=self.dtype)

    def mat_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = self._as_elems(a)
        b = self._as_elems(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
        products = self.mul(a[:, :, None], b[None, :, :])
        return np.bitwise_xor.reduce(products, axis=1)

    def mat_inv(self, m: np.ndarray) -> np.ndarray:
        m = self._as_elems(m)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"matrix must be square, got {m.shape}")
        size = m.shape[0]
        work = np.concatenate([m.copy(), self.identity(size)], axis=1)
        for col in range(size):
            pivots = np.nonzero(work[col:, col])[0]
            if pivots.size == 0:
                raise CodingError(f"singular matrix (no pivot in column {col})")
            pivot = col + int(pivots[0])
            if pivot != col:
                work[[col, pivot]] = work[[pivot, col]]
            work[col] = self.mul(work[col], self.inv(work[col, col]))
            factors = work[:, col].copy()
            factors[col] = 0
            work ^= self.mul(factors[:, None], work[col][None, :])
        return work[:, size:].copy()

    def vandermonde(self, rows: int, cols: int) -> np.ndarray:
        if rows > self.order:
            raise ValueError(f"GF(2^{self.bits}) supports at most {self.order} rows")
        i = np.arange(rows, dtype=self.dtype)
        out = np.empty((rows, cols), dtype=self.dtype)
        for col in range(cols):
            out[:, col] = self.pow(i, col)
        return out

    def rs_encoding_matrix(self, n: int, k: int) -> np.ndarray:
        """Systematic n x k RS matrix (identity top), Vandermonde-derived."""
        if not (0 < k < n):
            raise ValueError(f"require 0 < k < n, got n={n} k={k}")
        if n > self.order:
            raise ValueError(f"GF(2^{self.bits}) RS supports n <= {self.order}")
        raw = self.vandermonde(n, k)
        return self.mat_mul(raw, self.mat_inv(raw[:k, :k]))


#: GF(2^8) with the same polynomial as :mod:`repro.gf.tables` (0x11D).
GF256 = BinaryField(8, 0x11D)

#: GF(2^16), primitive polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B).
GF65536 = BinaryField(16, 0x1100B)
