"""Vectorised GF(2^8) element and buffer arithmetic.

Every function accepts scalars or ``uint8`` NumPy arrays and broadcasts like
normal NumPy ufuncs. Addition is XOR; multiplication/division go through the
log/exp tables with explicit zero masking. The chunk-sized operations
(:func:`gf_mul_scalar`, :func:`gf_mul_add_scalar`) are the RS codec's hot
path and never loop in Python.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from repro.gf.tables import FIELD_SIZE, GROUP_ORDER, _EXP, _LOG

ArrayLike = Union[int, np.ndarray]

#: Memoised per-scalar product rows: _PRODUCT_TABLES[c][x] == c * x.
#: At most 256 rows of 256 bytes (64 KiB); rows build lazily and are
#: immutable, so concurrent duplicate construction is harmless.
_PRODUCT_TABLES: Dict[int, np.ndarray] = {}


def gf_product_table(coeff: int) -> np.ndarray:
    """The 256-entry row ``table[x] == coeff * x`` in GF(2^8).

    Chunk-scalar multiplication with this row is a *single* ``np.take``
    gather — no log/exp double lookup, no zero masking (the row already
    maps 0 to 0). The row is read-only and cached per scalar.
    """
    table = _PRODUCT_TABLES.get(coeff)
    if table is None:
        if not 0 <= int(coeff) <= 255:
            raise ValueError(f"coefficient {coeff} outside GF(2^8)")
        table = np.zeros(FIELD_SIZE, dtype=np.uint8)
        if coeff:
            nz = np.arange(1, FIELD_SIZE)
            table[1:] = _EXP[_LOG[nz] + int(_LOG[coeff])]
        table.flags.writeable = False
        _PRODUCT_TABLES[int(coeff)] = table
    return table


def _as_u8(x: ArrayLike) -> np.ndarray:
    arr = np.asarray(x)
    if arr.dtype != np.uint8:
        if np.any((arr < 0) | (arr > 255)):
            raise ValueError("GF(2^8) elements must lie in [0, 255]")
        arr = arr.astype(np.uint8)
    return arr


def gf_add(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Field addition (XOR). Broadcasts; returns uint8."""
    return np.bitwise_xor(_as_u8(a), _as_u8(b))


def gf_sub(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Field subtraction — identical to addition in characteristic 2."""
    return gf_add(a, b)


def gf_mul(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Field multiplication via exp/log lookups with zero masking."""
    a8, b8 = _as_u8(a), _as_u8(b)
    la = _LOG[a8]
    lb = _LOG[b8]
    out = _EXP[la + lb]
    zero = (a8 == 0) | (b8 == 0)
    if zero.ndim == 0:
        return np.uint8(0) if zero else out[()] if out.ndim == 0 else out
    out = np.where(zero, np.uint8(0), out)
    return out.astype(np.uint8)


def gf_div(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Field division ``a / b``; raises ``ZeroDivisionError`` on any b == 0."""
    a8, b8 = _as_u8(a), _as_u8(b)
    if np.any(b8 == 0):
        raise ZeroDivisionError("division by zero in GF(2^8)")
    la = _LOG[a8]
    lb = _LOG[b8]
    out = _EXP[(la - lb) % GROUP_ORDER]
    zero = a8 == 0
    if zero.ndim == 0:
        return np.uint8(0) if zero else out[()] if out.ndim == 0 else out
    return np.where(zero, np.uint8(0), out).astype(np.uint8)


def gf_pow(a: ArrayLike, exponent: int) -> np.ndarray:
    """Field exponentiation ``a ** exponent`` for integer exponents.

    Negative exponents invert first (``a`` must then be non-zero);
    ``0 ** 0 == 1`` by convention.
    """
    a8 = _as_u8(a)
    if exponent == 0:
        return np.ones_like(a8)
    if exponent < 0:
        return gf_pow(gf_inv(a8), -exponent)
    la = _LOG[a8].astype(np.int64)
    out = _EXP[(la * exponent) % GROUP_ORDER]
    zero = a8 == 0
    if zero.ndim == 0:
        return np.uint8(0) if zero else out[()] if out.ndim == 0 else out
    return np.where(zero, np.uint8(0), out).astype(np.uint8)


def gf_inv(a: ArrayLike) -> np.ndarray:
    """Multiplicative inverse; raises ``ZeroDivisionError`` on any zero."""
    a8 = _as_u8(a)
    if np.any(a8 == 0):
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(2^8)")
    return _EXP[(GROUP_ORDER - _LOG[a8]) % GROUP_ORDER].astype(np.uint8)


def gf_mul_scalar(coeff: int, buf: np.ndarray) -> np.ndarray:
    """Multiply a whole uint8 buffer by one field scalar (vectorised).

    This is the per-chunk kernel of RS encode/decode: ``coeff * buf`` for a
    64 MiB chunk is one gather through the scalar's cached 256-entry
    product row (:func:`gf_product_table`).
    """
    buf8 = _as_u8(buf)
    if not 0 <= int(coeff) <= 255:
        raise ValueError(f"coefficient {coeff} outside GF(2^8)")
    if coeff == 0:
        return np.zeros_like(buf8)
    if coeff == 1:
        return buf8.copy()
    return np.take(gf_product_table(coeff), buf8)


def gf_mul_add_scalar(acc: np.ndarray, coeff: int, buf: np.ndarray) -> np.ndarray:
    """In-place fused multiply-add: ``acc ^= coeff * buf``; returns ``acc``.

    ``acc`` must be a writable uint8 array of the same shape as ``buf``.
    This is the partial-stripe-repair accumulator update (Equation (2) of
    the paper evaluated incrementally, one surviving chunk at a time).
    """
    if acc.dtype != np.uint8:
        raise ValueError("accumulator must be uint8")
    if acc.shape != np.shape(buf):
        raise ValueError(f"shape mismatch: acc {acc.shape} vs buf {np.shape(buf)}")
    if coeff == 0:
        return acc
    if coeff == 1:
        np.bitwise_xor(acc, _as_u8(buf), out=acc)
        return acc
    np.bitwise_xor(acc, np.take(gf_product_table(coeff), _as_u8(buf)), out=acc)
    return acc
