"""Exp/log table construction for GF(2^8).

The tables are built once at import time by repeated carry-less
multiplication by the generator element 2 modulo the primitive polynomial
0x11D. ``exp_table`` is doubled in length (510 entries) so that
``exp[log[a] + log[b]]`` never needs an explicit ``% 255`` in the hot
multiplication path — a standard trick from software RS implementations.
"""

from __future__ import annotations

import numpy as np

#: Number of field elements, |GF(2^8)|.
FIELD_SIZE: int = 256

#: Primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (same as ISA-L / klauspost).
PRIMITIVE_POLY: int = 0x11D

#: Multiplicative generator of the field under this polynomial.
GENERATOR: int = 2

#: Multiplicative group order (every non-zero element satisfies a^255 = 1).
GROUP_ORDER: int = FIELD_SIZE - 1


def _build_tables() -> "tuple[np.ndarray, np.ndarray]":
    """Build (exp, log) tables; exp has 2*255 entries to skip modular wraps."""
    exp = np.zeros(2 * GROUP_ORDER, dtype=np.uint8)
    log = np.zeros(FIELD_SIZE, dtype=np.int32)
    x = 1
    for i in range(GROUP_ORDER):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    exp[GROUP_ORDER:] = exp[:GROUP_ORDER]
    # log[0] is undefined mathematically; keep 0 but arithmetic.py masks
    # zero operands before the table lookup.
    log[0] = 0
    return exp, log


_EXP, _LOG = _build_tables()


def exp_table() -> np.ndarray:
    """Return a read-only view of the doubled exp table (len 510, uint8)."""
    view = _EXP.view()
    view.flags.writeable = False
    return view


def log_table() -> np.ndarray:
    """Return a read-only view of the log table (len 256, int32).

    ``log[0]`` is a placeholder; callers must mask zeros themselves (the
    functions in :mod:`repro.gf.arithmetic` do).
    """
    view = _LOG.view()
    view.flags.writeable = False
    return view
