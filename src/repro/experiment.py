"""Declarative experiment runner: JSON spec in, result rows out.

A downstream user reproducing or extending the paper should not have to
write orchestration code for every parameter sweep. An *experiment spec*
names the server configuration, the failure to inject, the schemes to
compare, and how many seeded runs to average; :func:`run_experiment`
executes it and returns table-ready rows.

Spec format (JSON)::

    {
      "name": "my-sweep",
      "server": {"n": 9, "k": 6, "disk_size": "1GiB", "chunk_size": "64MiB",
                  "num_disks": 36, "memory_chunks": 12, "ros": 0.1,
                  "slow_factor": 4.0, "placement": "random"},
      "failure": {"disks": [0], "mode": "single"},
      "algorithms": ["fsr", "hd-psr-ap", "hd-psr-as", "hd-psr-pa"],
      "runs": 3,
      "base_seed": 0
    }

``failure.mode`` is ``"single"`` (repair ``disks[0]``), ``"multi-naive"``,
or ``"multi-cooperative"``. CLI: ``hdpsr run spec.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence

from repro.core import (
    ALGORITHMS,
    cooperative_multi_disk_repair,
    naive_multi_disk_repair,
    repair_single_disk,
)
from repro.errors import ConfigurationError
from repro.workloads import build_exp_server

VALID_MODES = ("single", "multi-naive", "multi-cooperative")

#: Server keys forwarded verbatim to :func:`build_exp_server`.
SERVER_KEYS = (
    "n", "k", "disk_size", "chunk_size", "num_disks", "memory_chunks",
    "ros", "slow_factor", "jitter", "placement",
)


@dataclass
class ExperimentSpec:
    """A validated experiment description."""

    name: str
    server: Dict[str, Any]
    failure_disks: List[int]
    mode: str = "single"
    algorithms: List[str] = field(default_factory=lambda: list(ALGORITHMS))
    runs: int = 1
    base_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("experiment needs a name")
        if self.mode not in VALID_MODES:
            raise ConfigurationError(
                f"failure.mode must be one of {VALID_MODES}, got {self.mode!r}"
            )
        if not self.failure_disks:
            raise ConfigurationError("failure.disks must list at least one disk")
        if self.mode == "single" and len(self.failure_disks) != 1:
            raise ConfigurationError("mode 'single' takes exactly one failed disk")
        unknown_algos = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown_algos:
            raise ConfigurationError(
                f"unknown algorithms {unknown_algos}; known: {sorted(ALGORITHMS)}"
            )
        if not self.algorithms:
            raise ConfigurationError("algorithms must not be empty")
        if self.runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {self.runs}")
        unknown_keys = set(self.server) - set(SERVER_KEYS)
        if unknown_keys:
            raise ConfigurationError(
                f"unknown server keys {sorted(unknown_keys)}; known: {SERVER_KEYS}"
            )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        try:
            failure = data.get("failure", {})
            return cls(
                name=data["name"],
                server=dict(data.get("server", {})),
                failure_disks=list(failure.get("disks", [])),
                mode=failure.get("mode", "single"),
                algorithms=list(data.get("algorithms", list(ALGORITHMS))),
                runs=int(data.get("runs", 1)),
                base_seed=int(data.get("base_seed", 0)),
            )
        except KeyError as exc:
            raise ConfigurationError(f"spec is missing required field {exc}") from exc

    @classmethod
    def from_file(cls, path: "str | Path") -> "ExperimentSpec":
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"spec file {path} does not exist")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"spec file {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def _run_once(spec: ExperimentSpec, algorithm_name: str, seed: int) -> Dict[str, float]:
    server = build_exp_server(seed=seed, **spec.server)
    for disk in spec.failure_disks:
        server.fail_disk(disk)
    factory = ALGORITHMS[algorithm_name]
    if spec.mode == "single":
        out = repair_single_disk(server, factory(), spec.failure_disks[0])
        return {
            "total_time": out.transfer_time,
            "acwt": out.acwt,
            "chunks_read": float(out.chunks_read),
            "selection_seconds": out.selection_seconds,
        }
    repair = (
        naive_multi_disk_repair if spec.mode == "multi-naive"
        else cooperative_multi_disk_repair
    )
    out = repair(server, factory, spec.failure_disks)
    return {
        "total_time": out.total_time,
        "acwt": out.total_acwt,
        "chunks_read": float(out.chunks_read),
        "selection_seconds": 0.0,
    }


def run_experiment(spec: ExperimentSpec) -> List[Dict[str, Any]]:
    """Execute the spec; one averaged row per algorithm."""
    rows: List[Dict[str, Any]] = []
    for name in spec.algorithms:
        acc: Dict[str, float] = {}
        for run in range(spec.runs):
            result = _run_once(spec, name, spec.base_seed + run)
            for key, value in result.items():
                acc[key] = acc.get(key, 0.0) + value
        row: Dict[str, Any] = {"experiment": spec.name, "algorithm": name,
                               "mode": spec.mode, "runs": spec.runs}
        row.update({key: value / spec.runs for key, value in acc.items()})
        rows.append(row)
    return rows


def expand_sweep(data: Dict[str, Any]) -> List[ExperimentSpec]:
    """Expand a spec with a ``"sweep"`` section into concrete specs.

    ``sweep`` maps server keys to value lists; the cartesian product is
    taken and each combination becomes one spec named
    ``<name>/<key>=<value>/...``::

        {"name": "ros-sweep", "server": {...}, "failure": {...},
         "sweep": {"ros": [0.0, 0.1, 0.2], "k": ...}}

    A spec without a ``sweep`` section expands to itself.
    """
    sweep = data.get("sweep")
    if not sweep:
        return [ExperimentSpec.from_dict(data)]
    bad = set(sweep) - set(SERVER_KEYS)
    if bad:
        raise ConfigurationError(
            f"sweep keys {sorted(bad)} are not server keys; known: {SERVER_KEYS}"
        )
    keys = sorted(sweep)
    for key in keys:
        if not isinstance(sweep[key], (list, tuple)) or not sweep[key]:
            raise ConfigurationError(f"sweep.{key} must be a non-empty list")

    import itertools

    specs: List[ExperimentSpec] = []
    for combo in itertools.product(*(sweep[k] for k in keys)):
        concrete = dict(data)
        concrete.pop("sweep", None)
        server = dict(data.get("server", {}))
        suffix = []
        for key, value in zip(keys, combo):
            server[key] = value
            suffix.append(f"{key}={value}")
        concrete["server"] = server
        concrete["name"] = f"{data['name']}/{'/'.join(suffix)}"
        specs.append(ExperimentSpec.from_dict(concrete))
    return specs


def run_sweep(data: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Expand and run a (possibly swept) spec; returns all rows."""
    rows: List[Dict[str, Any]] = []
    for spec in expand_sweep(data):
        rows.extend(run_experiment(spec))
    return rows


def save_rows(rows: Sequence[Dict[str, Any]], path: "str | Path") -> Path:
    """Persist result rows as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(list(rows), indent=2))
    return path
