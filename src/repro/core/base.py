"""Common interface of the four repair schemes.

Every algorithm consumes the same inputs — the transfer-time matrix
``L_{s×k}`` (measured or estimated) and the memory capacity ``c`` — plus an
optional :class:`RepairContext` carrying what only some schemes need (disk
ids per chunk, a passive monitor, slow thresholds), and emits a
:class:`~repro.core.plans.RepairPlan`.

The split between *selection* (choosing P_a; timed, reported as the
"algorithm running time" of Experiments 2 & 4) and *planning* (mechanically
expanding P_a into per-stripe rounds) follows the paper's accounting: only
selection counts as algorithm running time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.core.plans import RepairPlan
from repro.errors import ConfigurationError
from repro.hdss.prober import PassiveMonitor


@dataclass
class RepairContext:
    """Side information a repair algorithm may consult.

    Attributes:
        disk_ids: s x k array; ``disk_ids[i, j]`` is the disk holding the
            chunk whose transfer time is ``L[i, j]`` (needed by HD-PSR-PA,
            which reasons about *disks*, and by slow-chunk classifiers that
            aggregate per disk).
        monitor: the passive slow-disk monitor (HD-PSR-PA).
        slow_threshold: absolute transfer-time threshold marking a chunk
            as a *slower*; when None, algorithms derive one from ``L``.
        slow_threshold_ratio: multiple of the median transfer time used to
            derive a threshold when no absolute one is given.
        extras: free-form bag for experiment-specific knobs.
    """

    disk_ids: Optional[np.ndarray] = None
    monitor: Optional[PassiveMonitor] = None
    slow_threshold: Optional[float] = None
    slow_threshold_ratio: float = 2.0
    extras: Dict[str, Any] = field(default_factory=dict)

    def resolve_threshold(self, L: np.ndarray) -> float:
        """The effective slow threshold for matrix ``L``."""
        if self.slow_threshold is not None:
            return float(self.slow_threshold)
        if self.slow_threshold_ratio <= 1.0:
            raise ConfigurationError(
                f"slow_threshold_ratio must exceed 1, got {self.slow_threshold_ratio}"
            )
        return self.slow_threshold_ratio * float(np.median(L))


class RepairAlgorithm(abc.ABC):
    """A single-disk repair scheme: L matrix + memory capacity -> plan."""

    #: Canonical name used in registries, reports and plan records.
    name: str = "abstract"

    #: Whether the scheme probes disks up front (FSR/PA do not).
    requires_probing: bool = False

    @abc.abstractmethod
    def build_plan(
        self,
        L: np.ndarray,
        c: int,
        context: Optional[RepairContext] = None,
    ) -> RepairPlan:
        """Produce a repair plan for the s stripes described by ``L``.

        Args:
            L: s x k transfer-time matrix (row order = admission order).
            c: memory capacity in chunks.
            context: optional side information (see :class:`RepairContext`).
        """

    @staticmethod
    def _check_inputs(L: np.ndarray, c: int) -> np.ndarray:
        L = np.asarray(L, dtype=np.float64)
        if L.ndim != 2 or L.shape[0] == 0 or L.shape[1] == 0:
            raise ConfigurationError(f"L must be a non-empty 2-D matrix, got shape {L.shape}")
        if np.any(L < 0) or not np.all(np.isfinite(L)):
            raise ConfigurationError("L must contain finite, non-negative times")
        if not isinstance(c, int) or isinstance(c, bool) or c <= 0:
            raise ConfigurationError(f"c must be a positive int, got {c!r}")
        if c < L.shape[1]:
            raise ConfigurationError(
                f"memory of c={c} chunks cannot hold one stripe of k={L.shape[1]}"
            )
        return L

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
