"""HD-PSR: the paper's repair algorithms and their execution machinery.

Contents map directly onto §4 of the paper:

* :mod:`repro.core.parallelism` — the Observation-1 relationship
  ``P_a = ceil(c / P_r)`` and repair-round arithmetic;
* :mod:`repro.core.plans` — repair-plan data structures shared by all
  algorithms, and the adapter that turns plans into simulator jobs;
* :mod:`repro.core.fsr` — the FSR baseline (§2.1);
* :mod:`repro.core.psr_ap` — HD-PSR-AP, Algorithm 1 (§4.2.1);
* :mod:`repro.core.psr_as` — HD-PSR-AS, Algorithm 2 (§4.2.2);
* :mod:`repro.core.psr_pa` — HD-PSR-PA, Algorithm 3 (§4.3);
* :mod:`repro.core.scheduler` — plan execution against the simulated
  memory (interval and slot models) and whole-disk repair orchestration;
* :mod:`repro.core.multi_disk` — naive vs cooperative multi-disk repair
  (§4.4);
* :mod:`repro.core.executor` — the byte-exact data path (chunks through
  the c-chunk memory, partial decoding, spare-disk write-back);
* :mod:`repro.core.analysis` — ACWT / TR analytics behind Figures 3-4.
"""

from repro.core.parallelism import pa_for_pr, pr_for_pa, rounds_for, split_rounds
from repro.core.plans import RepairPlan, StripePlan, plan_to_jobs
from repro.core.base import RepairAlgorithm, RepairContext
from repro.core.fsr import FullStripeRepair
from repro.core.psr_ap import ActivePreliminaryRepair, ap_total_transfer_time
from repro.core.psr_as import ActiveSlowerFirstRepair, classify_slow_chunks
from repro.core.psr_pa import PassiveRepair
from repro.core.sliced import simulate_sliced_repair, sliced_jobs
from repro.core.scheduler import (
    ExecutionOptions,
    RepairOutcome,
    execute_plan,
    repair_single_disk,
)
from repro.core.multi_disk import (
    MultiDiskOutcome,
    cooperative_multi_disk_repair,
    naive_multi_disk_repair,
)
from repro.core.executor import DataPathExecutor, DataPathStats, ReadPolicy
from repro.core.recovery import RecoveryResult, recover_disk, recover_disks
from repro.core.analysis import (
    acwt_curve_vs_pa,
    acwt_for_schedule,
    observation1_table,
    rounds_curve_vs_pr,
)

ALGORITHMS = {
    "fsr": FullStripeRepair,
    "hd-psr-ap": ActivePreliminaryRepair,
    "hd-psr-as": ActiveSlowerFirstRepair,
    "hd-psr-pa": PassiveRepair,
}
"""Registry of the paper's repair schemes by canonical name."""

__all__ = [
    "pa_for_pr",
    "pr_for_pa",
    "rounds_for",
    "split_rounds",
    "RepairPlan",
    "StripePlan",
    "plan_to_jobs",
    "RepairAlgorithm",
    "RepairContext",
    "FullStripeRepair",
    "ActivePreliminaryRepair",
    "ap_total_transfer_time",
    "ActiveSlowerFirstRepair",
    "classify_slow_chunks",
    "PassiveRepair",
    "sliced_jobs",
    "simulate_sliced_repair",
    "ExecutionOptions",
    "RepairOutcome",
    "execute_plan",
    "repair_single_disk",
    "MultiDiskOutcome",
    "naive_multi_disk_repair",
    "cooperative_multi_disk_repair",
    "DataPathExecutor",
    "DataPathStats",
    "ReadPolicy",
    "RecoveryResult",
    "recover_disk",
    "recover_disks",
    "acwt_curve_vs_pa",
    "acwt_for_schedule",
    "observation1_table",
    "rounds_curve_vs_pr",
    "ALGORITHMS",
]
