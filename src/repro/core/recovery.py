"""The complete recovery workflow in one call.

:func:`recover_disk` is the high-level "a disk just died" entry point a
downstream operator wants: it plans with the chosen HD-PSR scheme,
predicts the repair time on the simulated timeline, moves the actual bytes
through the bounded memory, writes rebuilt chunks to spares, commits the
placement remap, and scrubs the affected stripes to certify the outcome.

:func:`recover_disks` is the multi-failure counterpart: it unions the
failed disks' stripe sets and rebuilds every lost chunk of each affected
stripe from a single k-survivor read (cooperative repair, §4.4) on the
byte-exact plane.

Both accept a :class:`~repro.faults.spec.FaultSchedule` (``faults=``) and a
:class:`~repro.core.executor.ReadPolicy` (``policy=``); with either set the
data path runs hardened — mid-repair failures are re-planned around, slow
disks are retried or hedged, and unrecoverable stripes land in
``result.loss`` instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import os

from repro.core.base import RepairAlgorithm, RepairContext
from repro.core.executor import DataPathExecutor, DataPathStats, ReadPolicy
from repro.core.plans import RepairPlan
from repro.core.scheduler import (
    ExecutionOptions,
    RepairOutcome,
    _disk_id_matrix,
    execute_plan,
    repair_single_disk,
)
from repro.errors import JournalError, StorageError
from repro.faults.injector import FaultInjector
from repro.faults.report import DataLossReport
from repro.faults.spec import FaultSchedule
from repro.hdss.prober import ActiveProber
from repro.hdss.server import HighDensityStorageServer, ScrubReport
from repro.journal.journal import RepairJournal, RepairState, load_state
from repro.sim.metrics import TransferReport


@dataclass
class RecoveryResult:
    """Everything one recovery produced, across all three planes."""

    #: Simulated-timeline outcome (repair time, ACWT, the plan).
    outcome: RepairOutcome
    #: Byte-level stats (chunks rebuilt, bytes moved, peak memory).
    data_path: DataPathStats
    #: Shards remapped onto spares.
    remapped: int
    #: Post-recovery scrub of the affected stripes (lost stripes excluded).
    scrub: ScrubReport
    #: Per-stripe fault outcomes; ``None`` when the run was fault-free by
    #: construction (no schedule and no read policy).
    loss: Optional[DataLossReport] = None

    @property
    def certified(self) -> bool:
        """True when no stripe was lost and every one scrubbed clean.

        Strict by design: a disk that died *during* the repair leaves its
        own chunks missing from otherwise-recovered stripes, so those
        stripes scrub degraded and certification fails — the honest signal
        that another recovery (for the new disk) is still owed.
        """
        if self.loss is not None and self.loss.has_loss:
            return False
        return self.scrub.healthy and not self.scrub.unpopulated

    def summary(self) -> dict:
        out = {
            "algorithm": self.outcome.algorithm,
            "repair_time": self.outcome.transfer_time,
            "stripes": len(self.outcome.stripe_indices),
            "chunks_rebuilt": self.data_path.chunks_rebuilt,
            "bytes_written": self.data_path.bytes_written,
            "peak_memory_chunks": self.data_path.peak_memory_chunks,
            "remapped": self.remapped,
            "certified": self.certified,
        }
        if self.loss is not None:
            out["faults"] = self.loss.summary()
        return out


def _require_bytes(
    server: HighDensityStorageServer,
    stripe_indices: Sequence[int],
    survivor_ids: Sequence[Sequence[int]],
) -> None:
    """The data path needs actual survivor bytes, not metadata-only stripes."""
    from repro.ec.stripe import ChunkId

    sample_stripe = server.layout[stripe_indices[0]]
    sample_survivor = survivor_ids[0][0]
    if not server.store.contains(
        sample_stripe.disks[sample_survivor],
        ChunkId(sample_stripe.index, sample_survivor),
    ):
        raise StorageError(
            "server holds no chunk bytes; provision with with_data=True "
            "(or use repair_single_disk for timing-only studies)"
        )


def _hardened_executor(
    server: HighDensityStorageServer,
    faults: Optional[FaultSchedule],
    policy: Optional[ReadPolicy],
    journal: Optional[RepairJournal] = None,
    resume_state: Optional[RepairState] = None,
) -> DataPathExecutor:
    # A resumed run already survived one crash per previous incarnation
    # (the original plus one per 'resume' record) — skip exactly those.
    skip = resume_state.resume_count + 1 if resume_state is not None else 0
    injector = FaultInjector(server, faults, skip_crashes=skip) if faults else None
    return DataPathExecutor(
        server, policy=policy, injector=injector,
        journal=journal, resume_state=resume_state,
    )


def _open_journal(
    journal: "str | os.PathLike | RepairJournal | None",
) -> Optional[RepairJournal]:
    if journal is None or isinstance(journal, RepairJournal):
        return journal
    return RepairJournal(journal)


def _load_resume_state(
    journal: RepairJournal, server: HighDensityStorageServer
) -> RepairState:
    """Replay the journal and refuse to resume against the wrong server."""
    state = load_state(journal.root)
    fp = server.config.fingerprint()
    if state.fingerprint != fp:
        diff = sorted(
            k for k in set(state.fingerprint) | set(fp)
            if state.fingerprint.get(k) != fp.get(k)
        )
        raise JournalError(
            f"journal {journal.root} was written by a different server "
            f"configuration (mismatched: {diff}); refusing to resume"
        )
    journal.mark_resume(state.clock)
    return state


def _scrub_surviving(
    server: HighDensityStorageServer,
    stripe_indices: Sequence[int],
    stats: DataPathStats,
) -> ScrubReport:
    """Scrub the affected stripes, excluding those recorded as lost."""
    lost = set(stats.loss.lost) if stats.loss is not None else set()
    keep = [si for si in stripe_indices if si not in lost]
    return server.scrub(stripe_indices=keep) if keep else ScrubReport()


def recover_disk(
    server: HighDensityStorageServer,
    algorithm: RepairAlgorithm,
    failed_disk: int,
    options: Optional[ExecutionOptions] = None,
    context: Optional[RepairContext] = None,
    faults: Optional[FaultSchedule] = None,
    policy: Optional[ReadPolicy] = None,
    journal: "str | os.PathLike | RepairJournal | None" = None,
    resume: bool = False,
) -> RecoveryResult:
    """Fully recover one failed disk: plan, rebuild, commit, certify.

    The disk must already be failed and the server must hold real chunk
    bytes (``with_data=True`` provisioning or ``write_object``).

    ``faults`` binds a :class:`~repro.faults.injector.FaultInjector` to the
    data path (events fire as the logical clock advances); ``policy`` adds
    per-read timeouts/retries/hedging. With either set, unrecoverable
    stripes are recorded in ``result.loss`` instead of raising.

    ``journal`` (a directory path or open
    :class:`~repro.journal.journal.RepairJournal`) checkpoints the repair
    crash-consistently; with ``resume=True`` the journaled plan is reused
    verbatim — no re-planning, no re-probing — completed stripes are
    replayed from journaled payloads, and the in-flight stripe continues
    from its last committed round.

    Raises:
        StorageError: disk healthy / nothing to repair / store is
            metadata-only (nothing to rebuild byte-for-byte).
        JournalError: ``resume`` without a journal, or the journal belongs
            to a different server configuration.
    """
    jrnl = _open_journal(journal)
    state: Optional[RepairState] = None
    if resume:
        if jrnl is None:
            raise JournalError("resume=True needs a journal directory")
        state = _load_resume_state(jrnl, server)
        outcome = _journaled_outcome(state)
    else:
        outcome = repair_single_disk(
            server, algorithm, failed_disk, options=options, context=context
        )
    _require_bytes(server, outcome.stripe_indices, outcome.survivor_ids)
    executor = _hardened_executor(server, faults, policy, jrnl, state)
    stats = executor.repair(
        outcome.plan, outcome.stripe_indices, outcome.survivor_ids
    )
    remapped = server.commit_writebacks(stats.writebacks)
    scrub = _scrub_surviving(server, outcome.stripe_indices, stats)
    _finish_journal(jrnl, stats)
    return RecoveryResult(
        outcome=outcome, data_path=stats, remapped=remapped, scrub=scrub,
        loss=stats.loss,
    )


def _journaled_outcome(state: RepairState) -> RepairOutcome:
    """Rebuild the original run's outcome from the journal's begin record.

    The timing-plane report is zeroed: simulated repair time belongs to
    the run that planned the repair, not to the replay.
    """
    return RepairOutcome(
        algorithm=state.algorithm,
        plan=RepairPlan.from_dict(state.plan),
        report=TransferReport(total_time=0.0),
        stripe_indices=list(state.stripe_indices),
        survivor_ids=[list(row) for row in state.survivor_ids],
    )


def _finish_journal(jrnl: Optional[RepairJournal], stats: DataPathStats) -> None:
    if jrnl is None:
        return
    summary: dict = {
        "stripes_repaired": stats.stripes_repaired,
        "stripes_lost": stats.stripes_lost,
        "chunks_rebuilt": stats.chunks_rebuilt,
        "resumed_stripes": stats.resumed_stripes,
        "modeled_seconds": stats.modeled_seconds,
    }
    jrnl.complete(**summary)
    jrnl.close()


def recover_disks(
    server: HighDensityStorageServer,
    algorithm: RepairAlgorithm,
    failed_disks: Sequence[int],
    options: Optional[ExecutionOptions] = None,
    context: Optional[RepairContext] = None,
    faults: Optional[FaultSchedule] = None,
    policy: Optional[ReadPolicy] = None,
    select: str = "first",
    probe_noise: float = 0.02,
    journal: "str | os.PathLike | RepairJournal | None" = None,
    resume: bool = False,
) -> RecoveryResult:
    """Cooperatively recover several failed disks on the byte-exact plane.

    The failed disks' stripe sets are unioned and deduplicated; each
    affected stripe is repaired exactly once, rebuilding *all* of its lost
    chunks from a single k-survivor read (the multi-target capability of
    :class:`~repro.ec.partial.PartialDecoder`). This is the data-path twin
    of :func:`~repro.core.multi_disk.cooperative_multi_disk_repair`, which
    covers the timing plane.

    ``faults``/``policy`` harden the run exactly as in :func:`recover_disk`
    — the scripted "second disk dies mid-round" scenario goes through here:
    the injector really fails the disk, the executor salvages each stripe's
    accumulated partial sums via ``PartialDecoder.replan``, and stripes
    left with fewer than k readable shards are reported in ``result.loss``.

    Raises:
        StorageError: no failed disks, a listed disk is healthy, no
            affected stripes, or the store is metadata-only.
    """
    failed: List[int] = list(dict.fromkeys(failed_disks))
    if not failed:
        raise StorageError("no failed disks given")
    for d in failed:
        if not server.disk(d).is_failed:
            raise StorageError(f"disk {d} is healthy; fail it before repairing")

    jrnl = _open_journal(journal)
    if resume:
        if jrnl is None:
            raise JournalError("resume=True needs a journal directory")
        state = _load_resume_state(jrnl, server)
        outcome = _journaled_outcome(state)
        _require_bytes(server, outcome.stripe_indices, outcome.survivor_ids)
        executor = _hardened_executor(server, faults, policy, jrnl, state)
        stats = executor.repair(
            outcome.plan, outcome.stripe_indices, outcome.survivor_ids,
            failed_disks=state.failed_disks,
        )
        remapped = server.commit_writebacks(stats.writebacks)
        scrub = _scrub_surviving(server, outcome.stripe_indices, stats)
        _finish_journal(jrnl, stats)
        return RecoveryResult(
            outcome=outcome, data_path=stats, remapped=remapped, scrub=scrub,
            loss=stats.loss,
        )

    stripe_indices, survivor_ids, L_oracle = server.transfer_time_matrix(
        failed, select=select
    )
    if not stripe_indices:
        raise StorageError(f"disks {failed} hold no stripes; nothing to repair")
    _require_bytes(server, stripe_indices, survivor_ids)
    disk_ids = _disk_id_matrix(server, stripe_indices, survivor_ids)

    probe_bytes = 0
    if algorithm.requires_probing:
        prober = ActiveProber(server, noise=probe_noise)
        plan_rows = [
            [prober.estimated_chunk_time(server.layout[si].disks[j]) for j in shards]
            for si, shards in zip(stripe_indices, survivor_ids)
        ]
        import numpy as np

        L_plan = np.asarray(plan_rows, dtype=np.float64)
        probe_bytes = prober.probe_bytes_issued
    else:
        L_plan = L_oracle

    ctx = context or RepairContext()
    if ctx.disk_ids is None:
        ctx.disk_ids = disk_ids
    c = server.config.memory_chunks
    plan = algorithm.build_plan(L_plan, c, context=ctx)
    report = execute_plan(
        plan,
        L_oracle,
        c,
        stripe_indices=stripe_indices,
        survivor_ids=survivor_ids,
        disk_ids=disk_ids,
        options=options,
    )
    outcome = RepairOutcome(
        algorithm=algorithm.name,
        plan=plan,
        report=report,
        stripe_indices=list(stripe_indices),
        survivor_ids=[list(s) for s in survivor_ids],
        L=L_oracle,
        probe_bytes=probe_bytes,
    )
    executor = _hardened_executor(server, faults, policy, jrnl)
    stats = executor.repair(
        plan, stripe_indices, survivor_ids, failed_disks=failed
    )
    remapped = server.commit_writebacks(stats.writebacks)
    scrub = _scrub_surviving(server, stripe_indices, stats)
    _finish_journal(jrnl, stats)
    return RecoveryResult(
        outcome=outcome, data_path=stats, remapped=remapped, scrub=scrub,
        loss=stats.loss,
    )
