"""The complete recovery workflow in one call.

:func:`recover_disk` is the high-level "a disk just died" entry point a
downstream operator wants: it plans with the chosen HD-PSR scheme,
predicts the repair time on the simulated timeline, moves the actual bytes
through the bounded memory, writes rebuilt chunks to spares, commits the
placement remap, and scrubs the affected stripes to certify the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.base import RepairAlgorithm, RepairContext
from repro.core.executor import DataPathExecutor, DataPathStats
from repro.core.scheduler import (
    ExecutionOptions,
    RepairOutcome,
    repair_single_disk,
)
from repro.errors import StorageError
from repro.hdss.server import HighDensityStorageServer, ScrubReport


@dataclass
class RecoveryResult:
    """Everything one disk recovery produced, across all three planes."""

    #: Simulated-timeline outcome (repair time, ACWT, the plan).
    outcome: RepairOutcome
    #: Byte-level stats (chunks rebuilt, bytes moved, peak memory).
    data_path: DataPathStats
    #: Shards remapped onto spares.
    remapped: int
    #: Post-recovery scrub of the affected stripes.
    scrub: ScrubReport

    @property
    def certified(self) -> bool:
        """True when every affected stripe scrubbed clean after commit."""
        return self.scrub.healthy and not self.scrub.unpopulated

    def summary(self) -> dict:
        return {
            "algorithm": self.outcome.algorithm,
            "repair_time": self.outcome.transfer_time,
            "stripes": len(self.outcome.stripe_indices),
            "chunks_rebuilt": self.data_path.chunks_rebuilt,
            "bytes_written": self.data_path.bytes_written,
            "peak_memory_chunks": self.data_path.peak_memory_chunks,
            "remapped": self.remapped,
            "certified": self.certified,
        }


def recover_disk(
    server: HighDensityStorageServer,
    algorithm: RepairAlgorithm,
    failed_disk: int,
    options: Optional[ExecutionOptions] = None,
    context: Optional[RepairContext] = None,
) -> RecoveryResult:
    """Fully recover one failed disk: plan, rebuild, commit, certify.

    The disk must already be failed and the server must hold real chunk
    bytes (``with_data=True`` provisioning or ``write_object``).

    Raises:
        StorageError: disk healthy / nothing to repair / store is
            metadata-only (nothing to rebuild byte-for-byte).
    """
    outcome = repair_single_disk(
        server, algorithm, failed_disk, options=options, context=context
    )
    # the data path needs actual survivor bytes
    sample_stripe = server.layout[outcome.stripe_indices[0]]
    sample_survivor = outcome.survivor_ids[0][0]
    from repro.ec.stripe import ChunkId

    if not server.store.contains(
        sample_stripe.disks[sample_survivor],
        ChunkId(sample_stripe.index, sample_survivor),
    ):
        raise StorageError(
            "server holds no chunk bytes; provision with with_data=True "
            "(or use repair_single_disk for timing-only studies)"
        )
    executor = DataPathExecutor(server)
    stats = executor.repair(
        outcome.plan, outcome.stripe_indices, outcome.survivor_ids
    )
    remapped = server.commit_writebacks(stats.writebacks)
    scrub = server.scrub(stripe_indices=outcome.stripe_indices)
    return RecoveryResult(
        outcome=outcome, data_path=stats, remapped=remapped, scrub=scrub
    )
