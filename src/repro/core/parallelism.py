"""Observation 1 arithmetic: the two parallelism degrees restrict each other.

With a memory of ``c`` chunks and every stripe reading ``P_a`` chunks per
round, only ``P_r`` stripes fit at once. The paper states the relationship
as ``P_a = ceil(c / P_r)`` (Equation (3)) and uses ``P_r = ceil(c / P_a)``
inside Algorithm 1. The ceiling can *overcommit* memory (e.g. c=12, P_a=5
gives P_r=3 but 3x5 > 12); the ``"floor"`` policy is the conservative
alternative used where strict slot accounting matters.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import ConfigurationError


def _check(name: str, value: int) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive int, got {value!r}")
    return value


def pr_for_pa(c: int, pa: int, policy: str = "ceil") -> int:
    """Inter-stripe degree from intra-stripe degree.

    ``policy="ceil"`` is the paper's formula (Algorithm 1 line 3);
    ``policy="floor"`` never overcommits memory (result >= 1 always).
    """
    _check("c", c)
    _check("pa", pa)
    if policy == "ceil":
        return math.ceil(c / pa)
    if policy == "floor":
        return max(1, c // pa)
    raise ConfigurationError(f"unknown policy {policy!r}")


def pa_for_pr(c: int, pr: int, policy: str = "ceil") -> int:
    """Intra-stripe degree from inter-stripe degree (Equation (3))."""
    _check("c", c)
    _check("pr", pr)
    if policy == "ceil":
        return math.ceil(c / pr)
    if policy == "floor":
        return max(1, c // pr)
    raise ConfigurationError(f"unknown policy {policy!r}")


def rounds_for(k: int, pa: int) -> int:
    """Total repair rounds of one stripe: ``TR = ceil(k / P_a)`` (Obs. 3)."""
    _check("k", k)
    _check("pa", pa)
    return math.ceil(k / pa)


def split_rounds(columns: Sequence[int], pa: int) -> List[List[int]]:
    """Split an ordered chunk-column sequence into consecutive P_a rounds.

    The final round holds the remainder (< P_a chunks) when ``P_a`` does
    not divide ``len(columns)``.
    """
    _check("pa", pa)
    cols = list(columns)
    if not cols:
        raise ConfigurationError("cannot split an empty column sequence")
    return [cols[i : i + pa] for i in range(0, len(cols), pa)]
