"""Plan execution and whole-disk repair orchestration.

:func:`execute_plan` turns a :class:`~repro.core.plans.RepairPlan` into a
simulated timeline under one of two memory models:

* ``"slot"`` (default) — exact chunk-slot accounting on the event kernel:
  a round holds its chunks' slots for its duration, multi-round stripes
  keep accumulator slots, and the admission cap defaults to the plan's
  ``P_r`` (clamped to the deadlock-free maximum). This is the ground-truth
  executor all headline benchmarks share, so FSR and the three HD-PSR
  schemes compete under identical memory semantics.

* ``"interval"`` — the paper's §4.2.1 Step-2 model: ``P_r`` fixed-width
  memory intervals with FIFO stripe admission. Used by the model-fidelity
  ablation and by closed-form analyses.

:func:`repair_single_disk` runs the full single-disk recovery story against
a :class:`~repro.hdss.server.HighDensityStorageServer`: probe (active
schemes), build the plan from *estimated* times, execute against *oracle*
times, and report the paper's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import RepairAlgorithm, RepairContext
from repro.core.plans import RepairPlan, plan_to_jobs
from repro.errors import ConfigurationError, StorageError
from repro.hdss.prober import ActiveProber, PassiveMonitor
from repro.hdss.server import HighDensityStorageServer
from repro.obs.context import current_registry, current_tracer
from repro.obs.profiling import profile
from repro.sim.metrics import TransferReport
from repro.sim.transfer import simulate_interval_schedule, simulate_slot_schedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import SimFaultModel


@dataclass
class ExecutionOptions:
    """Knobs of the plan executor."""

    #: ``"slot"`` (exact, default) or ``"interval"`` (paper's model).
    model: str = "slot"
    #: Slot grant policy for the slot model.
    slot_policy: str = "first-fit"
    #: Optional decode cost added to every repair round.
    compute_time_per_round: float = 0.0
    #: Override the concurrent-stripe cap (default: the plan's P_r).
    max_concurrent: Optional[int] = None
    #: Charge partial-sum accumulator slots against the memory capacity
    #: (ablation; the paper's accounting budgets transfer buffers only).
    charge_accumulators: bool = False
    #: Per-stripe tail time after the last round: writing the rebuilt
    #: chunk to a spare disk (0 = reads only, the paper's accounting).
    writeback_seconds: float = 0.0
    #: Model each source disk as serving one request at a time (slot model
    #: only); False keeps the paper's L-matrix abstraction where a disk
    #: can feed any number of concurrent transfers at full speed.
    disk_contention: bool = False
    #: Optional timing-plane fault model
    #: (:class:`~repro.faults.injector.SimFaultModel`): slow/hang windows
    #: stretch transfers; a permanent disk failure aborts the stripes
    #: reading from it (surfaced in ``TransferReport.failed_jobs`` for the
    #: caller — e.g. cooperative multi-disk repair — to re-plan).
    faults: "Optional[SimFaultModel]" = None

    def __post_init__(self) -> None:
        if self.model not in ("slot", "interval"):
            raise ConfigurationError(f"unknown execution model {self.model!r}")


def execute_plan(
    plan: RepairPlan,
    L: np.ndarray,
    c: int,
    stripe_indices: Optional[Sequence[int]] = None,
    survivor_ids: Optional[Sequence[Sequence[int]]] = None,
    disk_ids: Optional[np.ndarray] = None,
    options: Optional[ExecutionOptions] = None,
) -> TransferReport:
    """Execute a plan against oracle transfer times ``L``.

    ``L`` must be the *actual* transfer-time matrix: plans built from noisy
    probe estimates still execute at real speeds, which is how estimation
    error costs an active scheme real time.
    """
    options = options or ExecutionOptions()
    tracer = current_tracer()
    jobs = plan_to_jobs(
        plan, L, stripe_indices, survivor_ids, disk_ids,
        charge_accumulators=options.charge_accumulators,
    )
    if options.model == "interval":
        num_intervals = options.max_concurrent or plan.pr
        if num_intervals is None:
            # Plans without a declared P_r (HD-PSR-PA): intervals must be
            # wide enough for the largest per-stripe footprint.
            num_intervals = max(1, c // max(j.max_round_size() + j.accumulator_slots for j in jobs))
        report = simulate_interval_schedule(
            jobs,
            num_intervals,
            compute_time_per_round=options.compute_time_per_round,
            tail_time_per_job=options.writeback_seconds,
            tracer=tracer,
            faults=options.faults,
        )
    else:
        cap = options.max_concurrent if options.max_concurrent is not None else plan.pr
        report = simulate_slot_schedule(
            jobs,
            capacity=c,
            policy=options.slot_policy,
            max_concurrent=cap,
            compute_time_per_round=options.compute_time_per_round,
            tail_time_per_job=options.writeback_seconds,
            disk_contention=options.disk_contention,
            tracer=tracer,
            faults=options.faults,
        )
    _record_execution_metrics(plan, report, options.model)
    return report


def _record_execution_metrics(plan: RepairPlan, report: TransferReport,
                              model: str) -> None:
    """Feed the process metrics registry after one plan execution."""
    registry = current_registry()
    labels = {"algorithm": plan.algorithm, "model": model}
    registry.counter(
        "hdpsr_plan_executions_total", "Repair plans executed"
    ).labels(**labels).inc()
    registry.counter(
        "hdpsr_stripes_scheduled_total", "Stripes scheduled across executions"
    ).labels(**labels).inc(plan.num_stripes)
    registry.counter(
        "hdpsr_rounds_scheduled_total", "Repair rounds scheduled"
    ).labels(**labels).inc(plan.total_rounds())
    registry.counter(
        "hdpsr_chunks_transferred_total", "Surviving chunks moved into memory"
    ).labels(**labels).inc(report.chunk_count)
    registry.histogram(
        "hdpsr_repair_sim_seconds", "Simulated makespan per execution"
    ).labels(**labels).observe(report.total_time)


@dataclass
class RepairOutcome:
    """Everything a single recovery produced."""

    algorithm: str
    plan: RepairPlan
    report: TransferReport
    #: Stripe indices repaired (row order of the L matrix used).
    stripe_indices: List[int]
    #: Survivor shard ids per stripe (column order of L).
    survivor_ids: List[List[int]]
    #: The oracle transfer-time matrix execution used.
    L: np.ndarray = field(repr=False, default=None)
    #: Probe traffic issued by active schemes, bytes.
    probe_bytes: int = 0

    @property
    def transfer_time(self) -> float:
        """Simulated repair (transfer) time."""
        return self.report.total_time

    @property
    def selection_seconds(self) -> float:
        """Wall-clock the algorithm spent choosing P_a."""
        return self.plan.selection_seconds

    @property
    def acwt(self) -> float:
        return self.report.acwt

    @property
    def chunks_read(self) -> int:
        return self.report.chunk_count

    def summary(self) -> Dict[str, float]:
        return {
            "algorithm": self.algorithm,
            "transfer_time": self.transfer_time,
            "acwt": self.acwt,
            "chunks_read": float(self.chunks_read),
            "selection_seconds": self.selection_seconds,
            "stripes": float(len(self.stripe_indices)),
        }


def _disk_id_matrix(
    server: HighDensityStorageServer,
    stripe_indices: Sequence[int],
    survivor_ids: Sequence[Sequence[int]],
) -> np.ndarray:
    """s x k matrix of source-disk ids aligned with the L matrix."""
    rows = []
    for si, shards in zip(stripe_indices, survivor_ids):
        stripe = server.layout[si]
        rows.append([stripe.disks[j] for j in shards])
    return np.asarray(rows, dtype=np.int64)


def repair_single_disk(
    server: HighDensityStorageServer,
    algorithm: RepairAlgorithm,
    failed_disk: int,
    options: Optional[ExecutionOptions] = None,
    select: str = "first",
    context: Optional[RepairContext] = None,
    probe_noise: float = 0.02,
) -> RepairOutcome:
    """Run one single-disk recovery end to end (timing model).

    The disk must already be failed (use
    :meth:`~repro.hdss.server.HighDensityStorageServer.fail_disk`).

    Active schemes (``requires_probing``) build their plan from
    :class:`~repro.hdss.prober.ActiveProber` estimates; FSR and HD-PSR-PA
    see no speed information up front. Execution always uses the oracle
    matrix.
    """
    if not server.disk(failed_disk).is_failed:
        raise StorageError(
            f"disk {failed_disk} is healthy; fail it explicitly before repairing"
        )
    failed = server.failed_disks()
    stripe_indices, survivor_ids, L_oracle = server.transfer_time_matrix(
        failed, select=select
    )
    if not stripe_indices:
        raise StorageError(f"disk {failed_disk} holds no stripes; nothing to repair")
    disk_ids = _disk_id_matrix(server, stripe_indices, survivor_ids)

    probe_bytes = 0
    if algorithm.requires_probing:
        prober = ActiveProber(server, noise=probe_noise)
        est_indices, est_survivors, L_plan = prober.estimate_matrix(failed, select=select)
        assert est_indices == stripe_indices and est_survivors == survivor_ids
        probe_bytes = prober.probe_bytes_issued
    else:
        L_plan = L_oracle

    ctx = context or RepairContext()
    if ctx.disk_ids is None:
        ctx.disk_ids = disk_ids
    if ctx.monitor is None and algorithm.name == "hd-psr-pa":
        ctx.monitor = PassiveMonitor(threshold_ratio=ctx.slow_threshold_ratio)

    c = server.config.memory_chunks
    with profile(f"plan/{algorithm.name}", stripes=len(stripe_indices)):
        plan = algorithm.build_plan(L_plan, c, context=ctx)
    tracer = current_tracer()
    if tracer.enabled:
        tracer.instant(
            "plan", f"plan built ({algorithm.name})",
            pa=plan.pa, pr=plan.pr, stripes=plan.num_stripes,
            rounds=plan.total_rounds(),
        )
    registry = current_registry()
    registry.histogram(
        "hdpsr_selection_seconds", "Wall-clock spent choosing P_a",
        buckets=(1e-5, 1e-4, 1e-3, 0.01, 0.1, 1.0, 10.0),
    ).labels(algorithm=algorithm.name).observe(plan.selection_seconds)
    if probe_bytes:
        registry.counter(
            "hdpsr_probe_bytes_total", "Bytes issued by active probing"
        ).labels(algorithm=algorithm.name).inc(probe_bytes)
    report = execute_plan(
        plan,
        L_oracle,
        c,
        stripe_indices=stripe_indices,
        survivor_ids=survivor_ids,
        disk_ids=disk_ids,
        options=options,
    )
    return RepairOutcome(
        algorithm=algorithm.name,
        plan=plan,
        report=report,
        stripe_indices=list(stripe_indices),
        survivor_ids=[list(s) for s in survivor_ids],
        L=L_oracle,
        probe_bytes=probe_bytes,
    )
