"""Multi-disk failure recovery: naive vs cooperative (paper §4.4).

*Naive* repairs failed disks one at a time: for every stripe on the disk
being repaired, read k survivors and rebuild that disk's chunk — so a
stripe that lost chunks on several failed disks is read and decoded once
**per failed disk**, duplicating I/O and computation.

*Cooperative* first unions the failed disks' *stripe sets*, deduplicates,
and repairs every affected stripe exactly once, rebuilding all of its lost
chunks from a single k-survivor read (the multi-target capability of
:class:`~repro.ec.partial.PartialDecoder` on the data path).

Figure 6's example: (n,k)=(5,3), disks 4 and 5 fail, three stripes — naive
reads 15 chunks, cooperative reads 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import RepairAlgorithm, RepairContext
from repro.core.scheduler import (
    ExecutionOptions,
    _disk_id_matrix,
    execute_plan,
)
from repro.errors import StorageError
from repro.faults.injector import SimFaultModel
from repro.hdss.prober import ActiveProber, PassiveMonitor
from repro.hdss.server import HighDensityStorageServer
from repro.obs.context import current_registry, current_tracer, use_tracer
from repro.obs.profiling import profile
from repro.obs.tracer import OffsetTracer
from repro.sim.metrics import TransferReport


@dataclass
class MultiDiskOutcome:
    """Result of a multi-disk recovery."""

    algorithm: str
    cooperative: bool
    failed_disks: List[int]
    #: Total simulated repair time (sequential per-disk phases for naive).
    total_time: float
    #: Surviving chunks read off disks (the Figure-6 currency).
    chunks_read: int
    #: Lost chunks rebuilt.
    chunks_rebuilt: int
    #: Per-phase reports: one per failed disk (naive) or a single one
    #: covering the deduplicated stripe union (cooperative).
    reports: List[TransferReport] = field(default_factory=list)
    #: Stripes processed in each phase.
    stripes_per_phase: List[int] = field(default_factory=list)
    #: Time at which the last *maximally vulnerable* stripe (the ones with
    #: the most lost chunks) was secured; one more failure before this
    #: instant would have the highest chance of losing data.
    time_to_safety: Optional[float] = None
    #: Stripes whose jobs were aborted by a mid-repair disk failure and
    #: then completed in a later re-plan phase (cooperative + faults only).
    replanned_stripes: List[int] = field(default_factory=list)
    #: Stripes abandoned as unrecoverable (fewer than k survivors left).
    lost_stripes: List[int] = field(default_factory=list)
    #: Re-plan phases executed after mid-repair failures.
    replan_phases: int = 0

    @property
    def total_acwt(self) -> float:
        waits = [w for rep in self.reports for w in rep.waits()]
        return float(np.mean(waits)) if waits else 0.0

    def summary(self) -> Dict[str, float]:
        out = {
            "algorithm": self.algorithm,
            "cooperative": self.cooperative,
            "failed_disks": float(len(self.failed_disks)),
            "total_time": self.total_time,
            "chunks_read": float(self.chunks_read),
            "chunks_rebuilt": float(self.chunks_rebuilt),
        }
        if self.replan_phases:
            out["replan_phases"] = float(self.replan_phases)
            out["replanned_stripes"] = float(len(self.replanned_stripes))
        if self.lost_stripes:
            out["lost_stripes"] = float(len(self.lost_stripes))
        return out


def _plan_inputs(
    server: HighDensityStorageServer,
    algorithm: RepairAlgorithm,
    stripe_indices: Sequence[int],
    select: str,
    probe_noise: float,
    prober: Optional[ActiveProber],
):
    """Oracle + planning matrices restricted to ``stripe_indices``.

    Survivors always exclude *every* currently failed disk on the server —
    a naive per-disk phase must not try to read from the other failed
    disks.
    """
    exclude = server.failed_disks()
    survivor_ids: List[List[int]] = []
    oracle_rows: List[List[float]] = []
    size = server.config.chunk_size
    for si in stripe_indices:
        stripe = server.layout[si]
        shards = server.survivor_shards(stripe, exclude, select=select)
        survivor_ids.append(shards)
        oracle_rows.append(
            [server.disks[stripe.disks[j]].transfer_time(size) for j in shards]
        )
    L_oracle = np.asarray(oracle_rows, dtype=np.float64)
    if algorithm.requires_probing:
        assert prober is not None
        plan_rows = [
            [prober.estimated_chunk_time(server.layout[si].disks[j]) for j in shards]
            for si, shards in zip(stripe_indices, survivor_ids)
        ]
        L_plan = np.asarray(plan_rows, dtype=np.float64)
    else:
        L_plan = L_oracle
    disk_ids = _disk_id_matrix(server, stripe_indices, survivor_ids)
    return survivor_ids, L_oracle, L_plan, disk_ids


def _run_phase(
    server: HighDensityStorageServer,
    algorithm: RepairAlgorithm,
    stripe_indices: List[int],
    select: str,
    options: Optional[ExecutionOptions],
    probe_noise: float,
    prober: Optional[ActiveProber],
    context: Optional[RepairContext],
    order: str = "default",
    failed: Optional[List[int]] = None,
) -> "tuple[TransferReport, int]":
    survivor_ids, L_oracle, L_plan, disk_ids = _plan_inputs(
        server, algorithm, stripe_indices, select, probe_noise, prober
    )
    ctx = context or RepairContext()
    ctx.disk_ids = disk_ids
    if ctx.monitor is None and algorithm.name == "hd-psr-pa":
        ctx.monitor = PassiveMonitor(threshold_ratio=ctx.slow_threshold_ratio)
    c = server.config.memory_chunks
    with profile(f"plan/{algorithm.name}", stripes=len(stripe_indices)):
        plan = algorithm.build_plan(L_plan, c, context=ctx)
    if order == "vulnerability":
        # Admit the most exposed stripes (fewest remaining erasures until
        # data loss) first, stably, overriding the algorithm's order.
        assert failed is not None
        lost_count = {
            row: len(server.layout[si].lost_shards(failed))
            for row, si in enumerate(stripe_indices)
        }
        plan.stripe_plans.sort(key=lambda sp: -lost_count[sp.stripe_index])
    elif order != "default":
        raise StorageError(f"unknown repair order {order!r}")
    report = execute_plan(
        plan,
        L_oracle,
        c,
        stripe_indices=stripe_indices,
        survivor_ids=survivor_ids,
        disk_ids=disk_ids,
        options=options,
    )
    return report, int(L_oracle.size)


def _check_failed(server: HighDensityStorageServer, failed_disks: Sequence[int]) -> List[int]:
    failed = list(dict.fromkeys(failed_disks))
    if not failed:
        raise StorageError("no failed disks given")
    for d in failed:
        if not server.disk(d).is_failed:
            raise StorageError(f"disk {d} is healthy; fail it before repairing")
    return failed


def naive_multi_disk_repair(
    server: HighDensityStorageServer,
    algorithm_factory: Callable[[], RepairAlgorithm],
    failed_disks: Sequence[int],
    options: Optional[ExecutionOptions] = None,
    select: str = "first",
    probe_noise: float = 0.02,
) -> MultiDiskOutcome:
    """Repair each failed disk independently, in the given order.

    Every phase re-reads k survivors for each stripe on its disk — shared
    stripes are processed once per failed disk, and earlier phases' rebuilt
    chunks are *not* reused (they live on spares outside the stripe's
    placement), exactly the redundancy §4.4 calls out.
    """
    failed = _check_failed(server, failed_disks)
    algorithm = algorithm_factory()
    prober = ActiveProber(server, noise=probe_noise) if algorithm.requires_probing else None

    total_time = 0.0
    chunks_read = 0
    chunks_rebuilt = 0
    reports: List[TransferReport] = []
    stripes_per_phase: List[int] = []
    tracer = current_tracer()
    for disk in failed:
        stripe_indices = server.layout.stripe_set(disk)
        if not stripe_indices:
            stripes_per_phase.append(0)
            continue
        # A fresh algorithm instance per phase: passive marks do carry over
        # in reality, so reuse the same monitor via context if desired.
        # Each phase simulates from t=0; shift its trace onto the shared
        # timeline at the phase's true start so the sequential structure
        # is visible.
        with use_tracer(OffsetTracer(tracer, total_time)):
            report, read = _run_phase(
                server, algorithm, list(stripe_indices), select, options,
                probe_noise, prober, None,
            )
        if tracer.enabled:
            tracer.complete(
                "phase", f"repair disk {disk}", total_time, report.total_time,
                track="phases", disk=disk, stripes=len(stripe_indices),
            )
        total_time += report.total_time
        chunks_read += report.chunk_count
        chunks_rebuilt += len(stripe_indices)
        reports.append(report)
        stripes_per_phase.append(len(stripe_indices))
    outcome = MultiDiskOutcome(
        algorithm=algorithm.name,
        cooperative=False,
        failed_disks=failed,
        total_time=total_time,
        chunks_read=chunks_read,
        chunks_rebuilt=chunks_rebuilt,
        reports=reports,
        stripes_per_phase=stripes_per_phase,
    )
    _record_multi_metrics(outcome)
    return outcome


def cooperative_multi_disk_repair(
    server: HighDensityStorageServer,
    algorithm_factory: Callable[[], RepairAlgorithm],
    failed_disks: Sequence[int],
    options: Optional[ExecutionOptions] = None,
    select: str = "first",
    probe_noise: float = 0.02,
    order: str = "default",
    journal: "Optional[object]" = None,
) -> MultiDiskOutcome:
    """Union the stripe sets, dedupe, repair every affected stripe once.

    Each stripe's single k-survivor read rebuilds *all* of its lost chunks
    (multi-target partial decoding), eliminating the naive scheme's
    repeated reads and decodes.

    ``order="vulnerability"`` admits the stripes with the most lost chunks
    first (they are one or two failures from data loss), shrinking
    ``time_to_safety`` at a possible small cost in total time — an
    extension beyond the paper's FIFO ordering.

    When ``options.faults`` carries a
    :class:`~repro.faults.injector.SimFaultModel` and a disk dies
    *mid-repair*, the aborted stripes are re-planned: the dead disk is
    marked failed on the server (so it joins ``failed_disks`` and is
    excluded from survivor selection), a fresh plan covering just the
    aborted stripes runs as an additional phase starting at the abort
    point, and stripes left with fewer than k survivors are recorded in
    ``lost_stripes`` instead of raising. The outcome's ``failed_disks``
    then includes mid-repair casualties, and ``time_to_safety`` is ``None``
    whenever data was actually lost.

    ``journal`` (a :class:`~repro.journal.journal.RepairJournal`) records a
    durable ``phase`` checkpoint at the initial-phase boundary and after
    every re-plan phase — the timing-plane metadata (phase start, stripes
    covered, disks newly failed) an operator needs to audit what a crashed
    multi-disk recovery had already scheduled.
    """
    failed = _check_failed(server, failed_disks)
    algorithm = algorithm_factory()
    prober = ActiveProber(server, noise=probe_noise) if algorithm.requires_probing else None

    stripe_indices = server.stripes_needing_repair(failed)
    if not stripe_indices:
        raise StorageError(f"disks {failed} hold no stripes; nothing to repair")
    tracer = current_tracer()
    options = options or ExecutionOptions()
    report, _ = _run_phase(
        server, algorithm, stripe_indices, select, options,
        probe_noise, prober, None, order=order, failed=failed,
    )
    if tracer.enabled:
        tracer.complete(
            "phase", f"cooperative repair of disks {failed}", 0.0,
            report.total_time, track="phases", stripes=len(stripe_indices),
        )
    if journal is not None:
        journal.phase(
            kind="initial", start=0.0, duration=float(report.total_time),
            stripes=len(stripe_indices), failed_disks=list(failed),
        )

    reports: List[TransferReport] = [report]
    stripes_per_phase: List[int] = [len(stripe_indices)]
    chunks_read = report.chunk_count
    finish_times: Dict[int, float] = dict(report.job_finish_times)
    total_time = report.total_time
    replanned: List[int] = []
    lost: List[int] = []
    replan_phases = 0
    k = server.config.k
    current = report
    # Mid-repair failures: every iteration marks at least one new disk
    # failed, so this terminates within the schedule's disk_fail budget.
    while current.failed_jobs:
        newly = {d for (_, d) in current.failed_jobs.values() if d is not None}
        phase_start = total_time
        # A round aborts on its *earliest* failing disk, so later failures
        # can be absent from failed_jobs; anything scheduled to die before
        # the re-plan phase begins has already happened by then.
        if options.faults is not None:
            for d, at in options.faults.schedule.disk_fail_times().items():
                if at <= phase_start and d < len(server.disks):
                    newly.add(d)
        newly = sorted(d for d in newly if not server.disk(d).is_failed)
        for d in newly:
            server.fail_disk(d)
        if not newly:
            break
        failed = list(dict.fromkeys(failed + newly))
        aborted = sorted(current.failed_jobs)
        recoverable: List[int] = []
        for si in aborted:
            stripe = server.layout[si]
            survivors = len(stripe.disks) - len(stripe.lost_shards(failed))
            if survivors >= k:
                recoverable.append(si)
            else:
                lost.append(si)
                if tracer.enabled:
                    tracer.instant("data-loss", f"stripe {si} unrecoverable",
                                   track="phases", stripe=si)
        if not recoverable:
            break
        replan_phases += 1
        phase_options = options
        if options.faults is not None:
            phase_options = replace(
                options,
                faults=SimFaultModel(options.faults.schedule.shifted(phase_start)),
            )
        with use_tracer(OffsetTracer(tracer, phase_start)):
            rep, _ = _run_phase(
                server, algorithm, recoverable, select, phase_options,
                probe_noise, prober, None, order=order, failed=failed,
            )
        if tracer.enabled:
            tracer.complete(
                "phase", f"re-plan after disk {newly} failed mid-repair",
                phase_start, rep.total_time, track="phases",
                stripes=len(recoverable),
            )
        if journal is not None:
            journal.phase(
                kind="replan", start=float(phase_start),
                duration=float(rep.total_time), stripes=len(recoverable),
                newly_failed=list(newly), failed_disks=list(failed),
            )
        total_time = phase_start + rep.total_time
        chunks_read += rep.chunk_count
        reports.append(rep)
        stripes_per_phase.append(len(recoverable))
        for si, t in rep.job_finish_times.items():
            finish_times[si] = phase_start + t
            replanned.append(si)
        current = rep

    lost_per_stripe = {
        si: len(server.layout[si].lost_shards(failed)) for si in stripe_indices
    }
    rebuilt = sum(lost_per_stripe[si] for si in finish_times)
    time_to_safety: Optional[float] = None
    if finish_times and not lost:
        max_lost = max(lost_per_stripe[si] for si in finish_times)
        time_to_safety = max(
            t for si, t in finish_times.items()
            if lost_per_stripe[si] == max_lost
        )
    outcome = MultiDiskOutcome(
        algorithm=algorithm.name,
        cooperative=True,
        failed_disks=failed,
        total_time=total_time,
        chunks_read=chunks_read,
        chunks_rebuilt=rebuilt,
        reports=reports,
        stripes_per_phase=stripes_per_phase,
        time_to_safety=time_to_safety,
        replanned_stripes=list(dict.fromkeys(replanned)),
        lost_stripes=sorted(lost),
        replan_phases=replan_phases,
    )
    _record_multi_metrics(outcome)
    return outcome


def _record_multi_metrics(outcome: MultiDiskOutcome) -> None:
    """Feed the metrics registry after a multi-disk recovery."""
    registry = current_registry()
    labels = {
        "algorithm": outcome.algorithm,
        "mode": "cooperative" if outcome.cooperative else "naive",
    }
    registry.counter(
        "hdpsr_multi_disk_repairs_total", "Multi-disk recoveries"
    ).labels(**labels).inc()
    registry.counter(
        "hdpsr_multi_disk_chunks_read_total",
        "Surviving chunks read during multi-disk recoveries",
    ).labels(**labels).inc(outcome.chunks_read)
    registry.histogram(
        "hdpsr_multi_disk_repair_seconds", "Simulated multi-disk repair time"
    ).labels(**labels).observe(outcome.total_time)
    if outcome.replan_phases:
        registry.counter(
            "hdpsr_sim_replan_phases_total",
            "Timing-plane re-plan phases after mid-repair disk failures",
        ).labels(**labels).inc(outcome.replan_phases)
    if outcome.lost_stripes:
        registry.counter(
            "hdpsr_sim_stripes_lost_total",
            "Stripes abandoned as unrecoverable on the timing plane",
        ).labels(**labels).inc(len(outcome.lost_stripes))
