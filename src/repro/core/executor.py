"""The byte-exact repair data path.

Timing studies use simulated clocks; this module moves the *actual bytes*:
surviving chunks flow from the chunk store through the bounded
:class:`~repro.hdss.memory.ChunkMemory` into a
:class:`~repro.ec.partial.PartialDecoder`, and rebuilt chunks are written
back to spare disks. The memory enforces the capacity ``c`` — a plan whose
rounds over-commit memory fails loudly here, which is how the test suite
proves every algorithm's plans respect the paper's constraint.

Stripes are processed in the plan's admission order. Concurrency is a
timing concern (handled by :mod:`repro.sim`); the data path is sequential
but holds, for each stripe, exactly the peak memory its plan declares
(round chunks + accumulators), so ``memory.peak_occupancy`` reflects one
stripe's true footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.plans import RepairPlan
from repro.ec.partial import PartialDecoder
from repro.ec.stripe import ChunkId
from repro.errors import StorageError
from repro.hdss.server import HighDensityStorageServer
from repro.obs.context import current_registry, current_tracer


@dataclass
class DataPathStats:
    """Byte-level accounting of one repair."""

    stripes_repaired: int = 0
    chunks_read: int = 0
    bytes_read: int = 0
    chunks_rebuilt: int = 0
    bytes_written: int = 0
    peak_memory_chunks: int = 0
    #: (stripe_index, shard_index, spare_disk) of every rebuilt chunk.
    writebacks: "List[tuple]" = None

    def __post_init__(self) -> None:
        if self.writebacks is None:
            self.writebacks = []


class DataPathExecutor:
    """Executes repair plans against real chunk bytes."""

    def __init__(self, server: HighDensityStorageServer, write_back: bool = True) -> None:
        self.server = server
        self.write_back = write_back

    def repair(
        self,
        plan: RepairPlan,
        stripe_indices: Sequence[int],
        survivor_ids: Sequence[Sequence[int]],
        failed_disks: Optional[Sequence[int]] = None,
    ) -> DataPathStats:
        """Rebuild every lost chunk of the planned stripes, byte for byte.

        Args:
            plan: the repair plan (column positions reference the
                ``survivor_ids`` rows).
            stripe_indices: global stripe index per plan row.
            survivor_ids: shard ids per (row, column).
            failed_disks: which disks count as lost (default: the server's
                currently failed set).

        Returns:
            Byte-level statistics; rebuilt chunks live on spare disks (and
            the store) afterwards when ``write_back`` is on.

        Raises:
            MemoryCapacityError: a round + accumulators exceeded ``c``.
            StorageError / ChunkNotFoundError: survivors are unreadable.
        """
        server = self.server
        failed = list(failed_disks) if failed_disks is not None else server.failed_disks()
        if not failed:
            raise StorageError("no failed disks; nothing to rebuild")
        memory = server.memory
        if memory.occupancy:
            raise StorageError(f"repair memory is not empty: {memory!r}")
        stats = DataPathStats()
        chunk_size = server.config.chunk_size
        tracer = current_tracer()

        for sp in plan.stripe_plans:
            row = sp.stripe_index
            global_index = stripe_indices[row]
            stripe = server.layout[global_index]
            shards = list(survivor_ids[row])
            targets = stripe.lost_shards(failed)
            if not targets:
                raise StorageError(
                    f"stripe {global_index} lost nothing on disks {failed}"
                )
            decoder = PartialDecoder(server.code, shards, targets, chunk_size=chunk_size)

            acc_handles = [("acc", global_index, t) for t in targets]
            multi_round = sp.num_rounds > 1
            with tracer.span("stripe", f"stripe {global_index}",
                             track="datapath", rounds=sp.num_rounds):
                if multi_round:
                    # Accumulators are resident for the stripe's whole repair.
                    for handle in acc_handles:
                        memory.admit(handle)

                for round_index, rnd in enumerate(sp.rounds):
                    fed: Dict[int, np.ndarray] = {}
                    handles = []
                    with tracer.span("round", f"stripe {global_index} round {round_index}",
                                     track="datapath", chunks=len(rnd)):
                        with tracer.span("read", "fetch survivors", track="datapath"):
                            for col in rnd:
                                shard_idx = shards[col]
                                disk_id = stripe.disks[shard_idx]
                                disk = server.disk(disk_id)
                                data = server.store.get(disk_id, ChunkId(global_index, shard_idx))
                                handle = ("xfer", global_index, shard_idx)
                                buf = memory.admit(handle, data)
                                handles.append(handle)
                                disk.record_read(data.size)
                                stats.chunks_read += 1
                                stats.bytes_read += int(data.size)
                                fed[shard_idx] = buf
                        with tracer.span("decode", "partial decode", track="datapath"):
                            decoder.feed(fed)
                        for handle in handles:
                            memory.release(handle)

                # Single-round plans decode in place: the accumulator result
                # is materialised only after the round's slots are released.
                results = decoder.results()
                with tracer.span("writeback", f"stripe {global_index} writeback",
                                 track="datapath", targets=len(targets)):
                    for target in targets:
                        rebuilt = results[target]
                        if self.write_back:
                            # never land two shards of one stripe on the same disk
                            spare = server.pick_spare(exclude=stripe.disks)
                            server.store.put(spare, ChunkId(global_index, target), rebuilt)
                            stats.writebacks.append((global_index, target, spare))
                        stats.chunks_rebuilt += 1
                        stats.bytes_written += int(rebuilt.size) if self.write_back else 0
                if multi_round:
                    for handle in acc_handles:
                        memory.release(handle)
                stats.stripes_repaired += 1

        stats.peak_memory_chunks = memory.peak_occupancy
        registry = current_registry()
        registry.counter(
            "hdpsr_datapath_bytes_read_total", "Survivor bytes read on the data path"
        ).inc(stats.bytes_read)
        registry.counter(
            "hdpsr_datapath_bytes_written_total", "Rebuilt bytes written back"
        ).inc(stats.bytes_written)
        registry.counter(
            "hdpsr_datapath_chunks_rebuilt_total", "Chunks rebuilt on the data path"
        ).inc(stats.chunks_rebuilt)
        return stats
