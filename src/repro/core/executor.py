"""The byte-exact repair data path.

Timing studies use simulated clocks; this module moves the *actual bytes*:
surviving chunks flow from the chunk store through the bounded
:class:`~repro.hdss.memory.ChunkMemory` into a
:class:`~repro.ec.partial.PartialDecoder`, and rebuilt chunks are written
back to spare disks. The memory enforces the capacity ``c`` — a plan whose
rounds over-commit memory fails loudly here, which is how the test suite
proves every algorithm's plans respect the paper's constraint.

Stripes are processed in the plan's admission order. Concurrency is a
timing concern (handled by :mod:`repro.sim`); the data path is sequential
but holds, for each stripe, exactly the peak memory its plan declares
(round chunks + accumulators), so ``memory.peak_occupancy`` reflects one
stripe's true footprint.

Fault hardening
---------------

The executor keeps a *logical clock*: every modeled read advances it by the
disk's (unjittered) transfer time. A :class:`~repro.faults.injector.FaultInjector`
bound to the executor fires schedule events as the clock passes them — at
read boundaries, so reads are atomic. When a pending survivor dies
mid-stripe the executor salvages the partial sums already accumulated
(``PartialDecoder.replan``), falls back to a from-scratch decode when the
salvage system is singular (``restart``), and finally records the stripe as
*lost* in a :class:`~repro.faults.report.DataLossReport` when fewer than
``k`` readable shards remain — never an unhandled exception.

A :class:`ReadPolicy` adds per-read timeouts with capped exponential
backoff (timeouts advance the clock, which lets transient slow/hang windows
expire) and optional hedged reads: a read that keeps timing out is re-planned
onto a different survivor. Timeouts alone never lose data — when no
alternative survivor exists the read is forced through at degraded speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.plans import RepairPlan, StripePlan
from repro.ec.partial import PartialDecoder
from repro.ec.stripe import ChunkId, Stripe
from repro.errors import (
    ChunkChecksumError,
    ChunkNotFoundError,
    CodingError,
    ConfigurationError,
    DiskFailedError,
    LatentSectorError,
    RetryExhaustedError,
    StorageError,
)
from repro.faults.report import LOST, RECOVERED, REPLANNED, DataLossReport
from repro.hdss.server import HighDensityStorageServer
from repro.hdss.store import FaultyChunkStore
from repro.obs.context import current_registry, current_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.journal.journal import RepairJournal, RepairState, StripeDone


@dataclass(frozen=True)
class ReadPolicy:
    """Knobs for hardening survivor reads against slow and hung disks.

    Attributes:
        timeout_seconds: a read whose modeled duration exceeds this is
            abandoned (the clock still pays the timeout) and retried after
            backoff. ``None`` disables timeouts entirely.
        max_retries: retry budget per read before giving up on the disk.
        backoff_base: first backoff sleep, seconds; attempt ``i`` sleeps
            ``backoff_base * 2**i`` (capped), letting transient windows end.
        backoff_cap: upper bound on a single backoff sleep.
        hedge: after the retry budget, re-plan the read onto a different
            survivor instead of forcing it through the slow disk.
        hedge_threshold_seconds: when set (with ``hedge``), a read slower
            than this hedges immediately without burning retries.
    """

    timeout_seconds: Optional[float] = None
    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    hedge: bool = False
    hedge_threshold_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ConfigurationError(
                f"need 0 <= backoff_base <= backoff_cap, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )
        if self.hedge_threshold_seconds is not None and self.hedge_threshold_seconds <= 0:
            raise ConfigurationError(
                f"hedge_threshold_seconds must be > 0, got {self.hedge_threshold_seconds}"
            )

    def backoff(self, attempt: int) -> float:
        """Backoff sleep before retry ``attempt`` (0-based), capped."""
        return min(self.backoff_base * (2.0 ** attempt), self.backoff_cap)


class _ShardDead(Exception):
    """Internal: a survivor shard is permanently unreadable."""

    def __init__(self, shard: int, cause: Exception) -> None:
        super().__init__(str(cause))
        self.shard = shard
        self.cause = cause


class _ShardSlow(RetryExhaustedError):
    """A survivor read exhausted its retry budget (disk alive but slow).

    Subclasses the public :class:`RetryExhaustedError` so the signal keeps a
    meaningful type if it ever escapes the executor's hedging machinery.
    """

    def __init__(self, shard: int) -> None:
        super().__init__(f"retries exhausted on shard {shard}")
        self.shard = shard


@dataclass
class DataPathStats:
    """Byte-level accounting of one repair."""

    stripes_repaired: int = 0
    chunks_read: int = 0
    bytes_read: int = 0
    chunks_rebuilt: int = 0
    bytes_written: int = 0
    peak_memory_chunks: int = 0
    #: (stripe_index, shard_index, spare_disk) of every rebuilt chunk.
    writebacks: "List[tuple]" = None
    #: Modeled seconds of transfer/backoff the repair spent (logical clock).
    modeled_seconds: float = 0.0
    #: Reads that hit the policy timeout at least once.
    timeouts: int = 0
    #: Retry attempts issued after a timeout.
    retries: int = 0
    #: Reads re-planned onto a different survivor because of slowness.
    hedged_reads: int = 0
    #: Mid-repair survivor-set changes that salvaged the partial sums.
    replans: int = 0
    #: Survivor-set changes that had to discard partial sums and restart.
    fresh_restarts: int = 0
    #: Chunks whose reads were preserved by a salvage replan.
    salvaged_chunks: int = 0
    #: Chunk reads issued more than once for the same stripe.
    reread_chunks: int = 0
    #: Chunk reads rejected by CRC32C sidecar verification.
    checksum_failures: int = 0
    #: Stripes whose terminal outcome was replayed from the journal.
    resumed_stripes: int = 0
    #: Journaled payloads re-put during replay (no survivor reads).
    replayed_chunks: int = 0
    #: Stripes with fewer than k readable shards (recorded, not raised).
    stripes_lost: int = 0
    #: Per-stripe outcome report; None when the run was fault-free by
    #: construction (no injector and no read policy).
    loss: Optional[DataLossReport] = None

    def __post_init__(self) -> None:
        if self.writebacks is None:
            self.writebacks = []


class DataPathExecutor:
    """Executes repair plans against real chunk bytes.

    Args:
        server: the storage server to repair.
        write_back: write rebuilt chunks to spare disks (default on).
        policy: read-hardening knobs; ``None`` reads without timeouts.
        injector: a :class:`~repro.faults.injector.FaultInjector` already
            bound to ``server``; its schedule fires as the logical clock
            advances past event times.
        journal: a :class:`~repro.journal.journal.RepairJournal` to
            checkpoint into — the plan at start, the decoder state at
            every round boundary, rebuilt payloads at stripe completion.
        resume_state: a replayed :class:`~repro.journal.journal.RepairState`;
            completed stripes are redone from journaled payloads (zero
            survivor reads) and the in-flight stripe restarts from its
            last committed round.
    """

    def __init__(
        self,
        server: HighDensityStorageServer,
        write_back: bool = True,
        policy: Optional[ReadPolicy] = None,
        injector: Optional["FaultInjector"] = None,
        journal: Optional["RepairJournal"] = None,
        resume_state: Optional["RepairState"] = None,
    ) -> None:
        self.server = server
        self.write_back = write_back
        self.policy = policy
        self.injector = injector
        self.journal = journal
        self.resume_state = resume_state
        if injector is not None:
            injector.attach()
        #: Logical repair clock, seconds of modeled transfer + backoff.
        self.clock = 0.0
        if resume_state is not None:
            # Restart where the crashed incarnation stopped; the first
            # _advance_faults() then re-applies every event the previous
            # run already survived (scripted crashes are skipped by the
            # injector's skip budget).
            self.clock = resume_state.clock

    # ------------------------------------------------------------------ reads
    def _advance_faults(self) -> None:
        if self.injector is not None:
            self.injector.advance(self.clock)

    def _transfer_seconds(self, disk, size: int) -> float:
        # Unjittered so the clock is a pure function of state — jitter would
        # consume RNG draws and perturb runs that share the server.
        return disk.transfer_time(size, jittered=False)

    def _read_survivor(
        self,
        stripe: Stripe,
        global_index: int,
        shard_idx: int,
        stats: DataPathStats,
        seen: Set[int],
    ) -> np.ndarray:
        """One hardened survivor read; advances the clock.

        Raises:
            _ShardDead: disk failed / chunk missing / latent sector error.
            _ShardSlow: policy retries exhausted and hedging is enabled.
        """
        server = self.server
        disk_id = stripe.disks[shard_idx]
        policy = self.policy
        attempt = 0
        while True:
            self._advance_faults()
            disk = server.disk(disk_id)
            if disk.is_failed:
                raise _ShardDead(shard_idx, DiskFailedError(f"disk {disk_id} failed"))
            duration = self._transfer_seconds(disk, server.config.chunk_size)
            if policy is not None:
                hedge_now = (
                    policy.hedge
                    and policy.hedge_threshold_seconds is not None
                    and duration > policy.hedge_threshold_seconds
                )
                timed_out = (
                    policy.timeout_seconds is not None
                    and duration > policy.timeout_seconds
                )
                if hedge_now and not timed_out:
                    raise _ShardSlow(shard_idx)
                if timed_out:
                    stats.timeouts += 1
                    self.clock += policy.timeout_seconds
                    if attempt >= policy.max_retries:
                        if policy.hedge:
                            raise _ShardSlow(shard_idx)
                        duration = self._wait_out(disk_id)
                        if duration is None:
                            raise _ShardDead(
                                shard_idx, DiskFailedError(f"disk {disk_id} failed")
                            )
                    else:
                        stats.retries += 1
                        self.clock += policy.backoff(attempt)
                        attempt += 1
                        continue
            try:
                data = server.store.get(disk_id, ChunkId(global_index, shard_idx))
            except (LatentSectorError, ChunkNotFoundError) as exc:
                if isinstance(exc, ChunkChecksumError):
                    stats.checksum_failures += 1
                raise _ShardDead(shard_idx, exc) from None
            self.clock += duration
            disk.record_read(data.size)
            stats.chunks_read += 1
            stats.bytes_read += int(data.size)
            if shard_idx in seen:
                stats.reread_chunks += 1
            seen.add(shard_idx)
            return data

    def _forced_read(
        self,
        stripe: Stripe,
        global_index: int,
        shard_idx: int,
        stats: DataPathStats,
        seen: Set[int],
    ) -> np.ndarray:
        """Read a slow shard with no timeout (waiting out transient windows).

        Raises:
            _ShardDead: the disk failed while we waited, or the chunk is
                gone/poisoned — the shard really is unreadable.
        """
        server = self.server
        disk_id = stripe.disks[shard_idx]
        self._advance_faults()
        duration = self._wait_out(disk_id)
        if duration is None:
            raise _ShardDead(shard_idx, DiskFailedError(f"disk {disk_id} failed"))
        try:
            data = server.store.get(disk_id, ChunkId(global_index, shard_idx))
        except (LatentSectorError, ChunkNotFoundError) as exc:
            if isinstance(exc, ChunkChecksumError):
                stats.checksum_failures += 1
            raise _ShardDead(shard_idx, exc) from None
        self.clock += duration
        server.disk(disk_id).record_read(data.size)
        stats.chunks_read += 1
        stats.bytes_read += int(data.size)
        if shard_idx in seen:
            stats.reread_chunks += 1
        seen.add(shard_idx)
        return data

    def _wait_out(self, disk_id: int) -> Optional[float]:
        """Forced read: wait for transient windows to close, then price it.

        The last resort when retries are exhausted and hedging is off (or
        impossible): block until the disk answers. Returns the final read
        duration, or ``None`` if the disk failed while we waited.
        """
        server = self.server
        while True:
            disk = server.disk(disk_id)
            if disk.is_failed:
                return None
            duration = self._transfer_seconds(disk, server.config.chunk_size)
            horizon = (
                self.injector.next_change_time()
                if self.injector is not None
                else math.inf
            )
            if not disk.is_slow or horizon <= self.clock or math.isinf(horizon):
                return duration
            self.clock = horizon
            self._advance_faults()

    # --------------------------------------------------------------- salvage
    def _readable_shards(
        self, stripe: Stripe, global_index: int, exclude: Set[int]
    ) -> List[int]:
        """Shards with a live disk and a readable chunk, fast disks first."""
        server = self.server
        store = server.store
        out: List[Tuple[bool, int]] = []
        for sid, disk_id in enumerate(stripe.disks):
            if sid in exclude:
                continue
            disk = server.disks[disk_id]
            if disk.is_failed:
                continue
            cid = ChunkId(global_index, sid)
            if not store.contains(disk_id, cid):
                continue
            if isinstance(store, FaultyChunkStore) and (disk_id, cid) in store._bad:
                continue
            out.append((disk.is_slow, sid))
        return [sid for _, sid in sorted(out)]

    def _rounds_of(self, shard_ids: Sequence[int], per_round: int) -> List[List[int]]:
        per_round = max(1, per_round)
        return [
            list(shard_ids[i : i + per_round])
            for i in range(0, len(shard_ids), per_round)
        ]

    def _replan_rounds(
        self,
        decoder: PartialDecoder,
        stripe: Stripe,
        global_index: int,
        bad_shard: int,
        stats: DataPathStats,
        per_round: int,
        tracer,
        allow_restart: bool = True,
    ) -> Optional[List[List[int]]]:
        """Re-plan a stripe around an unreadable (or hopelessly slow) shard.

        Returns the new read rounds, or ``None`` when no viable plan exists.
        Prefers :meth:`PartialDecoder.replan` (salvages every fed chunk, only
        ``k - t`` reads remain); falls back to a from-scratch ``restart``
        when the salvage system is singular. With ``allow_restart`` off
        (hedging a slow-but-alive shard) only the salvage path is tried —
        the caller forces the read through instead of discarding progress.
        """
        k, t = decoder.code.k, len(decoder.targets)
        exclude = set(decoder.targets) | {bad_shard}
        with tracer.span("replan", f"stripe {global_index} replan",
                         track="datapath", bad_shard=bad_shard):
            candidates = self._readable_shards(stripe, global_index, exclude)
            fed = set(decoder.fed)
            pending_alive = [s for s in decoder.pending if s in set(candidates)]
            fresh = [
                s for s in candidates
                if s not in set(pending_alive) and s not in fed
            ]
            # Last choice: re-read fed shards (their reads repeat, but the
            # accumulator still saves t reads versus a full restart).
            refed = [s for s in candidates if s in fed]
            new_reads = (pending_alive + fresh + refed)[: k - t]
            if len(new_reads) == k - t:
                try:
                    decoder.replan(new_reads)
                    stats.replans += 1
                    stats.salvaged_chunks += len(decoder.fed)
                    return self._rounds_of(decoder.pending, per_round)
                except CodingError:
                    pass  # singular salvage system; fall through to restart
            if not allow_restart:
                return None
            survivors = list(candidates)  # fed shards are re-readable
            if len(survivors) >= k:
                decoder.restart(survivors[:k])
                stats.fresh_restarts += 1
                return self._rounds_of(decoder.pending, per_round)
            stats.stripes_lost += 1
            tracer.instant("replan", f"stripe {global_index} lost",
                           readable=len(survivors), needed=k)
            return None

    # ----------------------------------------------------------------- repair
    def repair(
        self,
        plan: RepairPlan,
        stripe_indices: Sequence[int],
        survivor_ids: Sequence[Sequence[int]],
        failed_disks: Optional[Sequence[int]] = None,
    ) -> DataPathStats:
        """Rebuild every lost chunk of the planned stripes, byte for byte.

        Args:
            plan: the repair plan (column positions reference the
                ``survivor_ids`` rows).
            stripe_indices: global stripe index per plan row.
            survivor_ids: shard ids per (row, column).
            failed_disks: which disks count as lost (default: the server's
                currently failed set).

        Returns:
            Byte-level statistics; rebuilt chunks live on spare disks (and
            the store) afterwards when ``write_back`` is on. Under faults
            (injector or policy configured) ``stats.loss`` carries the
            per-stripe :class:`DataLossReport` — unrecoverable stripes are
            recorded there instead of raising.

        Raises:
            MemoryCapacityError: a round + accumulators exceeded ``c``.
            StorageError / ChunkNotFoundError: survivors are unreadable and
                no fault handling is configured.
        """
        server = self.server
        failed = list(failed_disks) if failed_disks is not None else server.failed_disks()
        if not failed:
            raise StorageError("no failed disks; nothing to rebuild")
        memory = server.memory
        if memory.occupancy:
            raise StorageError(f"repair memory is not empty: {memory!r}")
        hardened = (
            self.policy is not None
            or self.injector is not None
            or self.journal is not None
            or self.resume_state is not None
        )
        stats = DataPathStats()
        if hardened:
            stats.loss = DataLossReport()
        chunk_size = server.config.chunk_size
        tracer = current_tracer()

        if self.journal is not None and self.resume_state is None and not self.journal.begun:
            self.journal.begin(
                algorithm=plan.algorithm,
                plan=plan.to_dict(),
                stripe_indices=[int(si) for si in stripe_indices],
                survivor_ids=[[int(s) for s in row] for row in survivor_ids],
                failed_disks=[int(d) for d in failed],
                fingerprint=server.config.fingerprint(),
            )
        done = self.resume_state.done if self.resume_state is not None else {}
        inflight = self.resume_state.inflight if self.resume_state is not None else {}

        for sp in plan.stripe_plans:
            row = sp.stripe_index
            global_index = stripe_indices[row]
            stripe = server.layout[global_index]
            shards = list(survivor_ids[row])
            targets = stripe.lost_shards(failed)
            if not targets:
                raise StorageError(
                    f"stripe {global_index} lost nothing on disks {failed}"
                )
            if global_index in done:
                self._replay_stripe(global_index, done[global_index], stats, tracer)
                continue
            with tracer.span("stripe", f"stripe {global_index}",
                             track="datapath", rounds=sp.num_rounds):
                if hardened:
                    self._repair_stripe_hardened(
                        sp, stripe, global_index, shards, targets, stats, tracer,
                        restored=inflight.get(global_index),
                    )
                else:
                    self._repair_stripe(
                        sp, stripe, global_index, shards, targets, stats
                    )

        stats.peak_memory_chunks = memory.peak_occupancy
        stats.modeled_seconds = self.clock
        if stats.loss is not None and self.injector is not None:
            for kind, n in self.injector.applied.items():
                stats.loss.count_fault(kind, n)
        self._export_metrics(stats)
        return stats

    # ------------------------------------------------------------ fault-free
    def _repair_stripe(
        self,
        sp: StripePlan,
        stripe: Stripe,
        global_index: int,
        shards: List[int],
        targets: List[int],
        stats: DataPathStats,
    ) -> None:
        """The plain data path: no timeouts, failures propagate."""
        server = self.server
        memory = server.memory
        tracer = current_tracer()
        decoder = PartialDecoder(
            server.code, shards, targets, chunk_size=server.config.chunk_size
        )
        acc_handles = [("acc", global_index, t) for t in targets]
        multi_round = sp.num_rounds > 1
        if multi_round:
            # Accumulators are resident for the stripe's whole repair.
            for handle in acc_handles:
                memory.admit(handle)

        seen: Set[int] = set()
        for round_index, rnd in enumerate(sp.rounds):
            fed: Dict[int, np.ndarray] = {}
            handles = []
            with tracer.span("round", f"stripe {global_index} round {round_index}",
                             track="datapath", chunks=len(rnd)):
                with tracer.span("read", "fetch survivors", track="datapath"):
                    for col in rnd:
                        shard_idx = shards[col]
                        try:
                            data = self._read_survivor(
                                stripe, global_index, shard_idx, stats, seen
                            )
                        except _ShardDead as exc:
                            raise exc.cause  # plain path: surface the real error
                        handle = ("xfer", global_index, shard_idx)
                        buf = memory.admit(handle, data)
                        handles.append(handle)
                        fed[shard_idx] = buf
                with tracer.span("decode", "partial decode", track="datapath"):
                    decoder.feed(fed)
                for handle in handles:
                    memory.release(handle)

        # Single-round plans decode in place: the accumulator result
        # is materialised only after the round's slots are released.
        self._write_back(decoder, stripe, global_index, targets, stats)
        if multi_round:
            for handle in acc_handles:
                memory.release(handle)
        stats.stripes_repaired += 1

    # -------------------------------------------------------------- hardened
    def _repair_stripe_hardened(
        self,
        sp: StripePlan,
        stripe: Stripe,
        global_index: int,
        shards: List[int],
        targets: List[int],
        stats: DataPathStats,
        tracer,
        restored: Optional[Dict[str, object]] = None,
    ) -> None:
        """The fault-tolerant data path: salvage, restart, or record loss."""
        server = self.server
        memory = server.memory
        acc_handles = [("acc", global_index, t) for t in targets]
        acc_admitted = False
        # Post-failure rounds must fit alongside the accumulators even when
        # the original plan was single-round (its budget had no acc slots).
        per_round = max(1, sp.peak_memory_chunks() - len(targets))
        held: List[tuple] = []

        if restored is not None:
            # Resume mid-stripe from the last committed round: the
            # accumulators and remaining-read bookkeeping come straight
            # from the journal; nothing already fed is read again.
            state = dict(restored)
            outcome = str(state.pop("outcome", RECOVERED))
            decoder = PartialDecoder.from_state(server.code, state)
            seen: Set[int] = set(decoder.fed)
            queue = self._rounds_of(decoder.pending, per_round)
            if not decoder.complete:
                for handle in acc_handles:
                    memory.admit(handle)
                acc_admitted = True
        else:
            decoder = PartialDecoder(
                server.code, shards, targets, chunk_size=server.config.chunk_size
            )
            outcome = RECOVERED
            seen = set()
            queue = [[shards[col] for col in rnd] for rnd in sp.rounds]
            if sp.num_rounds > 1:
                for handle in acc_handles:
                    memory.admit(handle)
                acc_admitted = True

        def release_held() -> None:
            while held:
                memory.release(held.pop())

        round_index = decoder.rounds_fed
        while queue:
            rnd = [s for s in queue.pop(0) if s in set(decoder.pending)]
            if not rnd:
                continue
            fed: Dict[int, np.ndarray] = {}
            fault: "Optional[Exception]" = None
            rest: List[int] = []
            with tracer.span("round", f"stripe {global_index} round {round_index}",
                             track="datapath", chunks=len(rnd)):
                for pos, shard_idx in enumerate(rnd):
                    try:
                        data = self._read_survivor(
                            stripe, global_index, shard_idx, stats, seen
                        )
                    except (_ShardDead, _ShardSlow) as exc:
                        fault = exc
                        rest = rnd[pos + 1 :]
                        break
                    handle = ("xfer", global_index, shard_idx)
                    buf = memory.admit(handle, data)
                    held.append(handle)
                    fed[shard_idx] = buf
                # Salvage everything this round read successfully — fold it
                # into the accumulators before the handles go away.
                if fed:
                    decoder.feed(fed)
                release_held()
            if fed and self.journal is not None:
                self.journal.round_commit(
                    global_index, self.clock, decoder.to_state(), outcome=outcome
                )
            round_index += 1
            if fault is None:
                continue

            # Mid-round fault: make sure decoder state can survive further
            # rounds before re-planning the remaining reads.
            if not acc_admitted and not decoder.complete:
                for handle in acc_handles:
                    memory.admit(handle)
                acc_admitted = True

            if isinstance(fault, _ShardSlow):
                # Hedge: swap the slow shard for another survivor, keeping
                # everything already accumulated. A slow disk still has the
                # data, so never restart or lose the stripe over it — when
                # no alternative exists, force the read through.
                new_rounds = self._replan_rounds(
                    decoder, stripe, global_index, fault.shard, stats,
                    per_round, tracer, allow_restart=False,
                )
                if new_rounds is not None:
                    stats.hedged_reads += 1
                    outcome = REPLANNED
                    queue = new_rounds
                    continue
                try:
                    data = self._forced_read(
                        stripe, global_index, fault.shard, stats, seen
                    )
                except _ShardDead as exc:
                    fault = exc  # died while waiting; handle as dead below
                else:
                    handle = ("xfer", global_index, fault.shard)
                    buf = memory.admit(handle, data)
                    decoder.feed({fault.shard: buf})
                    memory.release(handle)
                    if rest:
                        queue.insert(0, rest)
                    continue

            # A survivor is permanently unreadable: salvage, restart, or lose.
            new_rounds = self._replan_rounds(
                decoder, stripe, global_index, fault.shard, stats,
                per_round, tracer, allow_restart=True,
            )
            if new_rounds is None:
                outcome = LOST
                break
            outcome = REPLANNED
            queue = new_rounds

        if outcome == LOST:
            release_held()
            if acc_admitted:
                for handle in acc_handles:
                    memory.release(handle)
            stats.loss.record(global_index, LOST)
            if self.journal is not None:
                self.journal.stripe_done(global_index, LOST, self.clock)
            return

        written = self._write_back(decoder, stripe, global_index, targets, stats)
        if acc_admitted:
            for handle in acc_handles:
                memory.release(handle)
        stats.stripes_repaired += 1
        stats.loss.record(global_index, outcome)
        if self.journal is not None:
            self.journal.stripe_done(global_index, outcome, self.clock, written)

    # ---------------------------------------------------------------- replay
    def _replay_stripe(
        self,
        global_index: int,
        done: "StripeDone",
        stats: DataPathStats,
        tracer,
    ) -> None:
        """Redo a journaled stripe outcome without touching any survivor.

        The journal's ``stripe_done`` record carries the rebuilt payload
        bytes, so replay is a pure write-side redo: re-put any chunk the
        spare is missing (volatile stores lose them across the crash;
        durable stores make this a no-op) and re-record the outcome. Zero
        survivor reads, zero decode work — the crashed run's completed
        rounds stay paid for.
        """
        server = self.server
        stats.resumed_stripes += 1
        with tracer.span("stripe", f"stripe {global_index} replay",
                         track="datapath", replayed=True):
            for target, spare, payload in done.writebacks:
                if payload is None:
                    continue
                cid = ChunkId(global_index, target)
                if self.write_back:
                    if not server.store.contains(spare, cid):
                        server.store.put(spare, cid, payload)
                        stats.replayed_chunks += 1
                    stats.writebacks.append((global_index, target, spare))
                stats.chunks_rebuilt += 1
                stats.bytes_written += int(payload.size) if self.write_back else 0
        if done.outcome == LOST:
            stats.stripes_lost += 1
        else:
            stats.stripes_repaired += 1
        if stats.loss is not None:
            stats.loss.record(global_index, done.outcome)

    # -------------------------------------------------------------- plumbing
    def _write_back(
        self,
        decoder: PartialDecoder,
        stripe: Stripe,
        global_index: int,
        targets: List[int],
        stats: DataPathStats,
    ) -> List[Tuple[int, int, np.ndarray]]:
        server = self.server
        tracer = current_tracer()
        results = decoder.results()
        written: List[Tuple[int, int, np.ndarray]] = []
        # never land two shards of one stripe on the same disk — including
        # two *rebuilt* shards (multi-target cooperative repair).
        exclude = list(stripe.disks)
        verify = getattr(server.store, "verify_chunk", None)
        with tracer.span("writeback", f"stripe {global_index} writeback",
                         track="datapath", targets=len(targets)):
            for target in targets:
                rebuilt = results[target]
                if self.write_back:
                    spare = server.pick_spare(exclude=exclude)
                    exclude.append(spare)
                    cid = ChunkId(global_index, target)
                    server.store.put(spare, cid, rebuilt)
                    if verify is not None:
                        # End-to-end: re-read the landed bytes against the
                        # sidecar before trusting the rebuilt chunk.
                        verify(spare, cid)
                    stats.writebacks.append((global_index, target, spare))
                    written.append((target, spare, rebuilt))
                stats.chunks_rebuilt += 1
                stats.bytes_written += int(rebuilt.size) if self.write_back else 0
        return written

    def _export_metrics(self, stats: DataPathStats) -> None:
        registry = current_registry()
        registry.counter(
            "hdpsr_datapath_bytes_read_total", "Survivor bytes read on the data path"
        ).inc(stats.bytes_read)
        registry.counter(
            "hdpsr_datapath_bytes_written_total", "Rebuilt bytes written back"
        ).inc(stats.bytes_written)
        registry.counter(
            "hdpsr_datapath_chunks_rebuilt_total", "Chunks rebuilt on the data path"
        ).inc(stats.chunks_rebuilt)
        if stats.loss is None:
            return
        loss = stats.loss
        loss.timeouts += stats.timeouts
        loss.retries += stats.retries
        loss.hedged_reads += stats.hedged_reads
        loss.replans += stats.replans
        loss.fresh_restarts += stats.fresh_restarts
        loss.salvaged_chunks += stats.salvaged_chunks
        loss.reread_chunks += stats.reread_chunks
        loss.checksum_failures += stats.checksum_failures
        loss.resumed_stripes += stats.resumed_stripes
        loss.replayed_chunks += stats.replayed_chunks
        for name, help_text, value in (
            ("hdpsr_read_timeouts_total", "Survivor reads that hit the timeout", stats.timeouts),
            ("hdpsr_read_retries_total", "Survivor read retries after backoff", stats.retries),
            ("hdpsr_hedged_reads_total", "Reads re-planned off a slow disk", stats.hedged_reads),
            ("hdpsr_replans_total", "Mid-repair salvage replans", stats.replans),
            ("hdpsr_fresh_restarts_total", "Salvage-infeasible full restarts", stats.fresh_restarts),
            ("hdpsr_chunks_salvaged_total", "Chunks preserved by salvage replans", stats.salvaged_chunks),
            ("hdpsr_replan_reread_chunks_total", "Chunk reads repeated after faults", stats.reread_chunks),
            ("hdpsr_stripes_lost_total", "Stripes recorded as unrecoverable", stats.stripes_lost),
            ("hdpsr_resume_stripes_replayed_total", "Stripe outcomes replayed from the journal", stats.resumed_stripes),
            ("hdpsr_resume_chunks_redone_total", "Journaled payloads re-put during replay", stats.replayed_chunks),
        ):
            if value:
                registry.counter(name, help_text).inc(value)


# Backwards-compatible alias: the retry-exhaustion signal surfaced to users
# when a forced read is impossible is the public RetryExhaustedError.
__all__ = [
    "DataPathExecutor",
    "DataPathStats",
    "ReadPolicy",
    "RetryExhaustedError",
]
