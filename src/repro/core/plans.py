"""Repair-plan structures shared by every HD-PSR algorithm.

A :class:`RepairPlan` says, for each stripe needing repair, *which survivor
chunks move in which repair round*. Chunks are referenced by their **column
position** in the stripe's row of the ``L_{s×k}`` matrix (position j maps
to survivor shard ``survivor_ids[i][j]``), which keeps the algorithms
independent of placement details.

:func:`plan_to_jobs` adapts a plan plus its ``L`` matrix into the simulator
job list executed by :mod:`repro.sim.transfer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import PlanError
from repro.sim.transfer import ChunkTransfer, StripeJob


@dataclass
class StripePlan:
    """One stripe's repair schedule.

    Attributes:
        stripe_index: which stripe (index into the L matrix rows *and* the
            ``stripe_indices`` list returned with it).
        rounds: ordered rounds; each round is a list of L-column positions
            transferred in parallel.
        accumulator_chunks: partial-sum chunks held between rounds (one per
            repair target when the plan has more than one round; zero for a
            single-round FSR-style plan where decode happens in place).
    """

    stripe_index: int
    rounds: List[List[int]]
    accumulator_chunks: int = 0

    def validate(self, k: int) -> None:
        """Check the plan covers each of the k columns exactly once."""
        if not self.rounds or any(not r for r in self.rounds):
            raise PlanError(f"stripe {self.stripe_index}: empty plan or empty round")
        flat = [c for rnd in self.rounds for c in rnd]
        if sorted(flat) != list(range(k)):
            raise PlanError(
                f"stripe {self.stripe_index}: rounds must cover columns 0..{k - 1} "
                f"exactly once, got {sorted(flat)}"
            )
        if self.accumulator_chunks < 0:
            raise PlanError(f"stripe {self.stripe_index}: negative accumulator count")

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def max_round_size(self) -> int:
        return max(len(r) for r in self.rounds)

    def peak_memory_chunks(self) -> int:
        """Worst-case chunk slots this stripe holds at once."""
        return self.max_round_size() + (self.accumulator_chunks if self.num_rounds > 1 else 0)


@dataclass
class RepairPlan:
    """A full single-recovery schedule produced by one algorithm.

    Attributes:
        algorithm: canonical algorithm name (``"fsr"``, ``"hd-psr-ap"``...).
        pa: the chosen intra-stripe parallelism degree (None when rounds
            are heterogeneous, as in HD-PSR-PA).
        pr: the inter-stripe degree the algorithm intends (admission cap /
            interval count); None lets the executor derive a safe value.
        stripe_plans: per-stripe schedules, in intended admission order.
        selection_seconds: wall-clock spent choosing P_a (the paper's
            "algorithm running time", Experiments 2 & 4).
        metadata: free-form extras (candidate T values, slow thresholds...).
    """

    algorithm: str
    stripe_plans: List[StripePlan]
    pa: Optional[int] = None
    pr: Optional[int] = None
    selection_seconds: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def validate(self, k: int) -> None:
        if not self.stripe_plans:
            raise PlanError(f"{self.algorithm}: plan has no stripes")
        seen = set()
        for sp in self.stripe_plans:
            if sp.stripe_index in seen:
                raise PlanError(f"{self.algorithm}: stripe {sp.stripe_index} planned twice")
            seen.add(sp.stripe_index)
            sp.validate(k)

    @property
    def num_stripes(self) -> int:
        return len(self.stripe_plans)

    def total_rounds(self) -> int:
        return sum(sp.num_rounds for sp in self.stripe_plans)

    def peak_memory_chunks(self) -> int:
        """Peak per-stripe footprint across the plan."""
        return max(sp.peak_memory_chunks() for sp in self.stripe_plans)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (for persisting/auditing plans)."""
        return {
            "algorithm": self.algorithm,
            "pa": self.pa,
            "pr": self.pr,
            "selection_seconds": self.selection_seconds,
            "metadata": _jsonable(self.metadata),
            "stripe_plans": [
                {
                    "stripe_index": sp.stripe_index,
                    "rounds": [list(r) for r in sp.rounds],
                    "accumulator_chunks": sp.accumulator_chunks,
                }
                for sp in self.stripe_plans
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RepairPlan":
        """Inverse of :meth:`to_dict`."""
        try:
            stripe_plans = [
                StripePlan(
                    stripe_index=int(sp["stripe_index"]),
                    rounds=[[int(c) for c in r] for r in sp["rounds"]],
                    accumulator_chunks=int(sp.get("accumulator_chunks", 0)),
                )
                for sp in data["stripe_plans"]
            ]
            return cls(
                algorithm=data["algorithm"],
                stripe_plans=stripe_plans,
                pa=data.get("pa"),
                pr=data.get("pr"),
                selection_seconds=float(data.get("selection_seconds", 0.0)),
                metadata=dict(data.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanError(f"malformed plan dict: {exc}") from exc

    def save(self, path) -> "Path":
        """Write the plan as JSON."""
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path) -> "RepairPlan":
        """Read a plan previously written by :meth:`save`."""
        import json
        from pathlib import Path

        path = Path(path)
        if not path.exists():
            raise PlanError(f"plan file {path} does not exist")
        try:
            return cls.from_dict(json.loads(path.read_text()))
        except json.JSONDecodeError as exc:
            raise PlanError(f"plan file {path} is not valid JSON: {exc}") from exc


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of metadata values to JSON-safe types."""
    import numpy as _np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, _np.generic):
        return value.item()
    return value


def plan_to_jobs(
    plan: RepairPlan,
    L: np.ndarray,
    stripe_indices: Optional[Sequence[int]] = None,
    survivor_ids: Optional[Sequence[Sequence[int]]] = None,
    disk_ids: Optional[np.ndarray] = None,
    charge_accumulators: bool = False,
) -> List[StripeJob]:
    """Materialise simulator jobs from a plan and its transfer-time matrix.

    Args:
        plan: the repair plan (column positions reference ``L``'s columns).
        L: the s x k transfer-time matrix the plan was built against.
        stripe_indices: global stripe index per L row (default: row number).
        survivor_ids: shard index per (row, column), used to key chunks as
            ``(stripe, shard)``; default keys are ``(stripe, column)``.
        disk_ids: optional s x k array of source disk per chunk (telemetry).
        charge_accumulators: when True, multi-round stripes hold their
            declared partial-sum slots between rounds. Default False —
            matching the paper's accounting, where ``c`` budgets in-flight
            *transfer* buffers only (Equation (3) packs ``P_r x P_a = c``
            with no accumulator term, and FSR's decode output buffer is
            likewise uncharged). The ablation benchmark flips this on.

    Chunk durations always come from ``L`` — the *oracle* times — even when
    the plan was built from noisy probe estimates; that is precisely how an
    active scheme's mis-estimation shows up as real execution time.
    """
    L = np.asarray(L, dtype=np.float64)
    if L.ndim != 2:
        raise PlanError(f"L must be 2-D, got shape {L.shape}")
    s, k = L.shape
    plan.validate(k)
    jobs: List[StripeJob] = []
    for sp in plan.stripe_plans:
        row = sp.stripe_index
        if not 0 <= row < s:
            raise PlanError(f"stripe plan row {row} outside L with {s} rows")
        global_index = stripe_indices[row] if stripe_indices is not None else row
        rounds: List[List[ChunkTransfer]] = []
        for rnd in sp.rounds:
            chunks = []
            for col in rnd:
                if survivor_ids is not None:
                    key = (global_index, int(survivor_ids[row][col]))
                else:
                    key = (global_index, int(col))
                disk = int(disk_ids[row][col]) if disk_ids is not None else None
                chunks.append(ChunkTransfer(key=key, duration=float(L[row, col]), disk=disk))
            rounds.append(chunks)
        acc = sp.accumulator_chunks if (charge_accumulators and sp.num_rounds > 1) else 0
        jobs.append(StripeJob(job_id=global_index, rounds=rounds, accumulator_slots=acc))
    return jobs
