"""FSR — full stripe repair, the conventional RAID baseline (§2.1).

Every stripe reads all k surviving chunks in a single round
(``P_a = k``), so a stripe occupies k memory slots for as long as its
slowest chunk takes, and only ``floor(c / k)`` stripes fit in memory at
once. No probing, no planning cost — and, per Observation 2, the worst
possible ACWT.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import RepairAlgorithm, RepairContext
from repro.core.plans import RepairPlan, StripePlan


class FullStripeRepair(RepairAlgorithm):
    """The baseline: one k-chunk round per stripe."""

    name = "fsr"
    requires_probing = False

    def build_plan(
        self,
        L: np.ndarray,
        c: int,
        context: Optional[RepairContext] = None,
    ) -> RepairPlan:
        L = self._check_inputs(L, c)
        s, k = L.shape
        stripe_plans = [
            StripePlan(stripe_index=i, rounds=[list(range(k))], accumulator_chunks=0)
            for i in range(s)
        ]
        return RepairPlan(
            algorithm=self.name,
            stripe_plans=stripe_plans,
            pa=k,
            pr=max(1, c // k),
            selection_seconds=0.0,
        )
