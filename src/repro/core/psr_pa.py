"""HD-PSR-PA — the Passive algorithm (paper §4.3, Algorithm 3).

PA never probes. It repairs with plain FSR by default, arming a timer on
every chunk read; a read exceeding the threshold marks its *disk* slow.
Stripes planned after a disk is marked repair in **two rounds**: first the
chunks on slow disks, then everything else — so fast chunks stop waiting
behind slow ones and the freed slots let more stripes into memory.

Because marking happens *during* recovery, planning is adaptive: stripe i's
plan depends on what reads of stripes < i revealed. We model that feedback
in admission order — after planning stripe i we feed its chunk transfer
times to the monitor, so the first stripe that touches a slow disk pays the
full FSR price and later stripes benefit. (In the real system marks update
in wall-clock order; admission order is the deterministic equivalent under
FIFO admission.)

PA's "algorithm running time" is zero by the paper's accounting: the timer
piggybacks on reads the repair performs anyway.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import RepairAlgorithm, RepairContext
from repro.core.plans import RepairPlan, StripePlan
from repro.errors import ConfigurationError
from repro.hdss.prober import PassiveMonitor


class PassiveRepair(RepairAlgorithm):
    """HD-PSR-PA: timer-driven slow marking, two-round remediation."""

    name = "hd-psr-pa"
    requires_probing = False

    def __init__(self, adaptive: bool = True) -> None:
        #: When False, plans use only the monitor's pre-existing marks
        #: (static snapshot); True replays the timer feedback loop.
        self.adaptive = adaptive

    def build_plan(
        self,
        L: np.ndarray,
        c: int,
        context: Optional[RepairContext] = None,
    ) -> RepairPlan:
        L = self._check_inputs(L, c)
        context = context or RepairContext()
        if context.disk_ids is None:
            raise ConfigurationError(
                "HD-PSR-PA needs context.disk_ids (it marks whole disks slow)"
            )
        disk_ids = np.asarray(context.disk_ids)
        if disk_ids.shape != L.shape:
            raise ConfigurationError(
                f"disk_ids shape {disk_ids.shape} must match L shape {L.shape}"
            )
        monitor = context.monitor
        if monitor is None:
            if context.slow_threshold is not None:
                monitor = PassiveMonitor(threshold=context.slow_threshold)
            else:
                # Truly passive default: the threshold is learned from the
                # reads themselves (ratio x running median).
                monitor = PassiveMonitor(threshold_ratio=context.slow_threshold_ratio)

        s, k = L.shape
        stripe_plans: List[StripePlan] = []
        remediated = 0
        for row in range(s):
            row_disks = disk_ids[row]
            slow_cols = [j for j in range(k) if monitor.is_slow(int(row_disks[j]))]
            if slow_cols:
                fast_cols = [j for j in range(k) if j not in set(slow_cols)]
                rounds = [slow_cols, fast_cols] if fast_cols else [slow_cols]
                acc = 1 if len(rounds) > 1 else 0
                remediated += 1
            else:
                rounds = [list(range(k))]
                acc = 0
            stripe_plans.append(
                StripePlan(stripe_index=row, rounds=rounds, accumulator_chunks=acc)
            )
            if self.adaptive:
                # The timers on this stripe's reads feed the monitor.
                for j in range(k):
                    monitor.observe(int(row_disks[j]), float(L[row, j]))
        return RepairPlan(
            algorithm=self.name,
            stripe_plans=stripe_plans,
            pa=None,
            pr=None,
            selection_seconds=0.0,
            metadata={
                "slow_disks": monitor.slow_disks,
                "remediated_stripes": remediated,
                "threshold": monitor.current_threshold(),
            },
        )
