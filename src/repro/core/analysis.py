"""Analytics behind Observations 1-3 (Figures 3 and 4 of the paper).

These helpers evaluate ACWT and repair-round counts for *prescribed*
(P_a, P_r) settings — no algorithm in the loop — which is exactly how the
paper's motivating figures are produced (s=100, k=12, c=12, transfer times
~ N(2, 4), ROS in {2, 5, 8, 10}%).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.parallelism import pa_for_pr, pr_for_pa, rounds_for, split_rounds
from repro.core.plans import RepairPlan, StripePlan
from repro.errors import ConfigurationError
from repro.sim.metrics import TransferReport
from repro.sim.transfer import simulate_interval_schedule
from repro.core.plans import plan_to_jobs


def uniform_pa_plan(L: np.ndarray, pa: int, pr: int, sort_rows: bool = False) -> RepairPlan:
    """A plain PSR plan: every stripe reads ``pa`` chunks per round.

    ``sort_rows=True`` groups each stripe's chunks ascending by transfer
    time (AP-style); False keeps the natural column order.
    """
    L = np.asarray(L, dtype=np.float64)
    s, k = L.shape
    if not 1 <= pa <= k:
        raise ConfigurationError(f"pa must be in [1, {k}], got {pa}")
    plans: List[StripePlan] = []
    for row in range(s):
        if sort_rows:
            cols = [int(ci) for ci in np.argsort(L[row], kind="stable")]
        else:
            cols = list(range(k))
        rounds = split_rounds(cols, pa)
        plans.append(
            StripePlan(
                stripe_index=row,
                rounds=rounds,
                accumulator_chunks=1 if len(rounds) > 1 else 0,
            )
        )
    return RepairPlan(algorithm=f"uniform-pa-{pa}", stripe_plans=plans, pa=pa, pr=pr)


def acwt_for_schedule(
    L: np.ndarray,
    pa: int,
    pr: Optional[int] = None,
    c: Optional[int] = None,
    sort_rows: bool = False,
) -> TransferReport:
    """Execute a uniform-``P_a`` schedule on the interval model.

    Provide either ``pr`` directly or ``c`` (then ``P_r = ceil(c / P_a)``).
    Returns the full report; ``report.acwt`` is the Figure-4(a) quantity.
    """
    if pr is None:
        if c is None:
            raise ConfigurationError("provide pr or c")
        pr = pr_for_pa(c, pa)
    plan = uniform_pa_plan(L, pa, pr, sort_rows=sort_rows)
    jobs = plan_to_jobs(plan, L)
    return simulate_interval_schedule(jobs, pr)


def acwt_curve_vs_pa(
    L: np.ndarray,
    c: int,
    pa_values: Optional[Iterable[int]] = None,
    sort_rows: bool = False,
) -> Dict[int, float]:
    """ACWT as a function of ``P_a`` (Observation 2 / Figure 4(a))."""
    L = np.asarray(L, dtype=np.float64)
    k = L.shape[1]
    if pa_values is None:
        pa_values = range(1, k + 1)
    return {
        pa: acwt_for_schedule(L, pa, c=c, sort_rows=sort_rows).acwt
        for pa in pa_values
    }


def total_time_curve_vs_pa(
    L: np.ndarray,
    c: int,
    pa_values: Optional[Iterable[int]] = None,
    sort_rows: bool = False,
) -> Dict[int, float]:
    """Total repair time as a function of ``P_a`` (the trade-off of §3.3)."""
    L = np.asarray(L, dtype=np.float64)
    k = L.shape[1]
    if pa_values is None:
        pa_values = range(1, k + 1)
    return {
        pa: acwt_for_schedule(L, pa, c=c, sort_rows=sort_rows).total_time
        for pa in pa_values
    }


def rounds_curve_vs_pr(k: int, c: int, pr_values: Optional[Iterable[int]] = None) -> Dict[int, int]:
    """TR as a function of ``P_r`` (Observation 3 / Figure 4(b)).

    ``P_r`` fixes ``P_a = ceil(c / P_r)`` (Equation (3)); a stripe then
    needs ``TR = ceil(k / P_a)`` repair rounds.
    """
    if pr_values is None:
        pr_values = range(1, c + 1)
    out: Dict[int, int] = {}
    for pr in pr_values:
        pa = pa_for_pr(c, pr)
        out[pr] = rounds_for(k, min(pa, k))
    return out


def observation1_table(c: int, pa_values: Optional[Iterable[int]] = None) -> List[Tuple[int, int]]:
    """(P_a, P_r) pairs under Equation (3) — the Figure 3 restriction."""
    if pa_values is None:
        pa_values = range(1, c + 1)
    return [(pa, pr_for_pa(c, pa)) for pa in pa_values]
