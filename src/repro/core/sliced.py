"""Slice-level repair pipelining (the RP [18] idea, §6) on the HDSS.

Repair Pipelining splits every chunk into ``v`` equal *slices* and streams
them, so a buffer only ever holds a slice and the pipeline keeps all
sources busy. Inside one server this translates to: memory is managed at
slice granularity (capacity ``c * v`` slice slots), each stripe's repair
makes ``k * v`` slice transfers of duration ``t/v`` each, folded into the
partial sum slice by slice.

The catch the distributed-systems papers don't pay: on a disk, every extra
request costs positioning time. :func:`sliced_jobs` therefore charges a
per-slice overhead, making the slice factor a real trade-off — larger
``v`` shrinks waiting (finer pipelining) but adds ``k * (v-1) * overhead``
of pure seek cost per stripe. ``bench_ablation_slicing.py`` sweeps it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.parallelism import split_rounds
from repro.errors import ConfigurationError
from repro.sim.metrics import TransferReport
from repro.sim.transfer import ChunkTransfer, StripeJob, simulate_slot_schedule


def sliced_jobs(
    L: np.ndarray,
    slice_factor: int,
    pa: int,
    per_slice_overhead: float = 0.0,
    stripe_indices: Optional[Sequence[int]] = None,
    disk_ids: Optional[np.ndarray] = None,
) -> List[StripeJob]:
    """Build slice-granular repair jobs from a chunk transfer-time matrix.

    Each chunk column becomes ``slice_factor`` sequential transfers of
    ``t / slice_factor + overhead`` seconds. Rounds move ``pa`` *chunks*'
    worth of concurrent slices: round r transfers slice r-of-v for the
    chunks of its group — the streaming pattern of repair pipelining.

    Slot accounting is in **slice units**: execute the returned jobs with
    ``capacity = c * slice_factor``.
    """
    L = np.asarray(L, dtype=np.float64)
    if L.ndim != 2 or L.size == 0:
        raise ConfigurationError(f"L must be a non-empty 2-D matrix, got {L.shape}")
    if not isinstance(slice_factor, int) or slice_factor < 1:
        raise ConfigurationError(f"slice_factor must be an int >= 1, got {slice_factor!r}")
    if per_slice_overhead < 0:
        raise ConfigurationError("per_slice_overhead must be >= 0")
    s, k = L.shape
    if not 1 <= pa <= k:
        raise ConfigurationError(f"pa must be in [1, {k}], got {pa}")

    jobs: List[StripeJob] = []
    for row in range(s):
        job_id = stripe_indices[row] if stripe_indices is not None else row
        order = [int(c) for c in np.argsort(L[row], kind="stable")]
        groups = split_rounds(order, pa)
        rounds: List[List[ChunkTransfer]] = []
        for group in groups:
            for slice_idx in range(slice_factor):
                rounds.append([
                    ChunkTransfer(
                        key=(job_id, col, slice_idx),
                        duration=float(L[row, col]) / slice_factor + per_slice_overhead,
                        disk=int(disk_ids[row, col]) if disk_ids is not None else None,
                    )
                    for col in group
                ])
        jobs.append(StripeJob(job_id=job_id, rounds=rounds, accumulator_slots=0))
    return jobs


def simulate_sliced_repair(
    L: np.ndarray,
    c: int,
    slice_factor: int,
    pa: int,
    per_slice_overhead: float = 0.0,
    max_concurrent: Optional[int] = None,
    disk_ids: Optional[np.ndarray] = None,
    disk_contention: bool = False,
) -> TransferReport:
    """Execute a sliced-pipelining repair on the slot model.

    ``c`` stays in chunk units; internally the slot pool runs at slice
    granularity (``c * slice_factor`` slice slots, each round holding
    ``pa`` slices = ``pa / slice_factor`` chunks of memory).

    With ``disk_contention=True`` (and ``disk_ids`` given) every slice
    request occupies its source disk — which is where extreme slicing
    loses: the per-slice positioning cost consumes real disk service
    capacity, not just buffer time.
    """
    if not isinstance(c, int) or c < 1:
        raise ConfigurationError(f"c must be a positive int, got {c!r}")
    jobs = sliced_jobs(L, slice_factor, pa, per_slice_overhead, disk_ids=disk_ids)
    return simulate_slot_schedule(
        jobs,
        capacity=c * slice_factor,
        max_concurrent=max_concurrent,
        disk_contention=disk_contention,
    )
