"""HD-PSR-AS — the Active Slower-First algorithm (paper §4.2.2, Algorithm 2).

AS skips AP's full sweep. Its insight: what wastes memory is *fasters*
waiting for *slowers*, so (1) group each stripe's slow chunks at the front
so they travel together, and (2) size ``P_a`` to the worst-case number of
slowers so one round can swallow a stripe's entire slow set:

    ``P_a = max(min(max_i slow_i, k // 2), 2)``        (Equation (5))

Classification uses a transfer-time threshold (a multiple of the median by
default). Complexity is ``O(s * k)``.

Note on the paper's pseudocode: Algorithm 2's fast/slow-pointer loop starts
``fp`` at 1 and never classifies chunk 0, so a slow chunk in position 0 is
displaced (and uncounted) by the first swap. We implement the evident
intent — a stable slowers-first partition over *all* k chunks — which the
text ("count the number of slowers ... move the slowers together") asks
for.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.base import RepairAlgorithm, RepairContext
from repro.core.parallelism import pr_for_pa, split_rounds
from repro.core.plans import RepairPlan, StripePlan


def classify_slow_chunks(L: np.ndarray, threshold: float) -> np.ndarray:
    """Boolean s x k matrix: True where a chunk is a *slower*."""
    return np.asarray(L, dtype=np.float64) > float(threshold)


def slower_first_order(slow: np.ndarray) -> np.ndarray:
    """Stable permutation per row placing slow columns first.

    Returns an s x k integer matrix of column indices: row i reordered as
    (slow columns in original order, then fast columns in original order).
    """
    # argsort of (not slow) with stable kind: False (slow) sorts first and
    # original order is preserved inside each class.
    return np.argsort(~slow, axis=1, kind="stable")


class ActiveSlowerFirstRepair(RepairAlgorithm):
    """HD-PSR-AS: one-pass slower counting, clamped ``P_a``."""

    name = "hd-psr-as"
    requires_probing = True

    def __init__(self, pr_policy: str = "ceil") -> None:
        self.pr_policy = pr_policy

    def select(self, L: np.ndarray, c: int, threshold: float) -> "tuple[int, int, int, float]":
        """Count slowers and clamp; returns ``(pa, pr, max_slow, seconds)``."""
        L = self._check_inputs(L, c)
        k = L.shape[1]
        t0 = time.perf_counter()
        slow = classify_slow_chunks(L, threshold)
        slow_counts = slow.sum(axis=1)
        max_slow = int(slow_counts.max())
        pa = max(min(max_slow, k // 2), 2)
        pa = min(pa, k)  # guard tiny k (k < 2 is rejected upstream anyway)
        elapsed = time.perf_counter() - t0
        return pa, pr_for_pa(c, pa, policy=self.pr_policy), max_slow, elapsed

    def build_plan(
        self,
        L: np.ndarray,
        c: int,
        context: Optional[RepairContext] = None,
    ) -> RepairPlan:
        L = self._check_inputs(L, c)
        context = context or RepairContext()
        threshold = context.resolve_threshold(L)
        s, k = L.shape
        pa, pr, max_slow, elapsed = self.select(L, c, threshold)

        slow = classify_slow_chunks(L, threshold)
        order = slower_first_order(slow)
        stripe_plans = []
        for row in range(s):
            cols = [int(ci) for ci in order[row]]
            rounds = split_rounds(cols, pa)
            stripe_plans.append(
                StripePlan(
                    stripe_index=row,
                    rounds=rounds,
                    accumulator_chunks=1 if len(rounds) > 1 else 0,
                )
            )
        return RepairPlan(
            algorithm=self.name,
            stripe_plans=stripe_plans,
            pa=pa,
            pr=pr,
            selection_seconds=elapsed,
            metadata={
                "slow_threshold": threshold,
                "max_slow_per_stripe": max_slow,
                "total_slow_chunks": int(slow.sum()),
            },
        )
