"""HD-PSR-AP — the Active Preliminary algorithm (paper §4.2.1, Algorithm 1).

AP sweeps every candidate ``P_a`` in ``2..k`` and, for each, predicts the
total transfer time ``T`` with the *twice dimensionality reduction*:

1. **Row reduction** — sort each stripe's k transfer times ascending; with
   rounds of ``P_a`` consecutive sorted chunks, round time is the block
   maximum (the last element of the block), so the stripe's total time is
   the sum of every ``P_a``-th sorted element (Equation (4)).
2. **Column reduction** — sort the resulting per-stripe times ascending
   and run the sliding-window simulation of ``P_r = ceil(c / P_a)``
   memory intervals. For ascending admission the window simulation has a
   closed form: the makespan is the sum of every ``P_r``-th element of the
   *descending* stripe-time sequence (proof: the head of the sorted window
   is always the next to finish, so completion times satisfy
   ``E[i] = L_s[i] + E[i - P_r]``, which telescopes).

The chosen ``P_a`` is the first one minimising ``T``. The sweep is fully
vectorised; complexity is ``O(s log s * k)`` after the one-off row sort,
matching the paper's analysis.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.base import RepairAlgorithm, RepairContext
from repro.core.parallelism import pr_for_pa, split_rounds
from repro.core.plans import RepairPlan, StripePlan
from repro.errors import ConfigurationError


def stripe_times_for_pa(L_sorted: np.ndarray, pa: int) -> np.ndarray:
    """First dimensionality reduction: per-stripe total transfer time.

    Args:
        L_sorted: s x k matrix with each **row sorted ascending**.
        pa: intra-stripe parallelism degree.

    Returns:
        Length-s vector: ``sum over rounds of the round's slowest chunk``.
    """
    s, k = L_sorted.shape
    if not 1 <= pa <= k:
        raise ConfigurationError(f"pa must be in [1, {k}], got {pa}")
    ends = np.minimum(np.arange(pa, k + pa, pa), k) - 1
    return L_sorted[:, ends].sum(axis=1)


def window_makespan(stripe_times: np.ndarray, pr: int) -> float:
    """Second dimensionality reduction: the sliding-window makespan.

    Equivalent to admitting stripes in ascending-duration order onto
    ``pr`` parallel memory intervals; closed form = sum of every ``pr``-th
    element of the descending sorted sequence.
    """
    if pr <= 0:
        raise ConfigurationError(f"pr must be positive, got {pr}")
    if stripe_times.size == 0:
        return 0.0
    descending = np.sort(stripe_times)[::-1]
    return float(descending[::pr].sum())


def ap_total_transfer_time(
    L: np.ndarray, pa: int, c: int, pr_policy: str = "ceil"
) -> float:
    """Predicted total transfer time for one candidate ``P_a``.

    Rows of ``L`` are sorted internally; use :func:`stripe_times_for_pa`
    directly when sweeping many candidates over a pre-sorted matrix.
    """
    L = np.asarray(L, dtype=np.float64)
    L_sorted = np.sort(L, axis=1)
    pr = pr_for_pa(c, pa, policy=pr_policy)
    return window_makespan(stripe_times_for_pa(L_sorted, pa), pr)


class ActivePreliminaryRepair(RepairAlgorithm):
    """HD-PSR-AP: exhaustive ``P_a`` sweep minimising predicted ``T``.

    Args:
        pr_policy: how ``P_r`` follows from ``P_a`` (``"ceil"`` is the
            paper's Equation (3); ``"floor"`` never overcommits memory).
        pa_min: smallest candidate (paper: 2).
    """

    name = "hd-psr-ap"
    requires_probing = True

    def __init__(self, pr_policy: str = "ceil", pa_min: int = 2) -> None:
        if pa_min < 1:
            raise ConfigurationError(f"pa_min must be >= 1, got {pa_min}")
        self.pr_policy = pr_policy
        self.pa_min = pa_min

    def select(self, L: np.ndarray, c: int) -> Tuple[int, int, Dict[int, float], float]:
        """Run the sweep; returns ``(pa, pr, candidate_T, seconds)``."""
        L = self._check_inputs(L, c)
        k = L.shape[1]
        t0 = time.perf_counter()
        L_sorted = np.sort(L, axis=1)
        candidates: Dict[int, float] = {}
        best_pa, best_t = 0, float("inf")
        for pa in range(min(self.pa_min, k), k + 1):
            pr = pr_for_pa(c, pa, policy=self.pr_policy)
            t = window_makespan(stripe_times_for_pa(L_sorted, pa), pr)
            candidates[pa] = t
            if t < best_t:
                best_t, best_pa = t, pa
        elapsed = time.perf_counter() - t0
        return best_pa, pr_for_pa(c, best_pa, policy=self.pr_policy), candidates, elapsed

    def build_plan(
        self,
        L: np.ndarray,
        c: int,
        context: Optional[RepairContext] = None,
    ) -> RepairPlan:
        L = self._check_inputs(L, c)
        s, k = L.shape
        pa, pr, candidates, elapsed = self.select(L, c)

        # Rounds read chunks in ascending measured-speed order (the sorted
        # blocks the prediction assumed); stripes are admitted ascending by
        # their reduced time L_s, matching the window model.
        order = np.argsort(L, axis=1, kind="stable")
        L_sorted = np.take_along_axis(L, order, axis=1)
        stripe_times = stripe_times_for_pa(L_sorted, pa)
        admission = np.argsort(stripe_times, kind="stable")

        stripe_plans = []
        for row in admission:
            cols = [int(ci) for ci in order[row]]
            rounds = split_rounds(cols, pa)
            stripe_plans.append(
                StripePlan(
                    stripe_index=int(row),
                    rounds=rounds,
                    accumulator_chunks=1 if len(rounds) > 1 else 0,
                )
            )
        return RepairPlan(
            algorithm=self.name,
            stripe_plans=stripe_plans,
            pa=pa,
            pr=pr,
            selection_seconds=elapsed,
            metadata={"candidate_T": candidates, "predicted_T": candidates[pa]},
        )
