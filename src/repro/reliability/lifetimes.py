"""Disk lifetime distributions.

Two standard models:

* :class:`ExponentialLifetime` — memoryless, parameterised by MTTF (or the
  commonly quoted AFR, annualised failure rate);
* :class:`WeibullLifetime` — shape < 1 captures infant mortality, shape > 1
  wear-out; field studies of disk populations typically fit shapes between
  0.7 and 1.3.

All sampling is vectorised and seeded.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import check_positive

#: Seconds per year (365.25 days).
YEAR_SECONDS: float = 365.25 * 24 * 3600.0


class LifetimeModel(abc.ABC):
    """Samples disk time-to-failure in seconds."""

    @abc.abstractmethod
    def sample(self, count: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``count`` independent lifetimes (seconds, float64)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected lifetime in seconds (MTTF)."""

    def describe(self) -> str:
        return type(self).__name__


class ExponentialLifetime(LifetimeModel):
    """Memoryless lifetimes with the given MTTF.

    Args:
        mttf_seconds: mean time to failure; alternatively pass ``afr`` (a
            fraction per year, e.g. 0.02 for 2% AFR) and MTTF is derived
            as ``1 year / afr``.
    """

    def __init__(self, mttf_seconds: "float | None" = None, afr: "float | None" = None) -> None:
        if (mttf_seconds is None) == (afr is None):
            raise ConfigurationError("pass exactly one of mttf_seconds or afr")
        if afr is not None:
            check_positive("afr", afr)
            mttf_seconds = YEAR_SECONDS / afr
        check_positive("mttf_seconds", mttf_seconds)
        self.mttf_seconds = float(mttf_seconds)

    def sample(self, count: int, rng: RngLike = None) -> np.ndarray:
        gen = make_rng(rng)
        return gen.exponential(self.mttf_seconds, size=count)

    def mean(self) -> float:
        return self.mttf_seconds

    def describe(self) -> str:
        return f"exponential(MTTF={self.mttf_seconds / YEAR_SECONDS:.1f} y)"


class WeibullLifetime(LifetimeModel):
    """Weibull lifetimes: ``scale`` in seconds, dimensionless ``shape``."""

    def __init__(self, scale_seconds: float, shape: float = 1.0) -> None:
        check_positive("scale_seconds", scale_seconds)
        check_positive("shape", shape)
        self.scale_seconds = float(scale_seconds)
        self.shape = float(shape)

    def sample(self, count: int, rng: RngLike = None) -> np.ndarray:
        gen = make_rng(rng)
        return self.scale_seconds * gen.weibull(self.shape, size=count)

    def mean(self) -> float:
        return self.scale_seconds * math.gamma(1.0 + 1.0 / self.shape)

    def describe(self) -> str:
        return (
            f"weibull(scale={self.scale_seconds / YEAR_SECONDS:.1f} y, "
            f"shape={self.shape})"
        )
