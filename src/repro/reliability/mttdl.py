"""Monte-Carlo durability simulation of an erasure-coded chassis.

Each trial replays one mission: disks fail according to a lifetime model,
each failure triggers a repair that completes after ``repair_seconds``
(the number produced by a repair scheme — this is where HD-PSR's speedup
enters), and **data loss** is declared the moment some stripe has more
than ``m = n - k`` of its disks simultaneously down. Repaired disks return
to service with a freshly sampled lifetime (the rebuilt data lives on a
spare; the slot is modelled as good-as-new).

The estimator reports the mission loss probability with a 95% Wilson
interval and an MTTDL estimate from the observed loss times.

**Latent errors and the scrub window.** With
``latent_error_rate_per_disk_year > 0`` each disk also accrues silent
corruption (bitrot, torn writes) as a Poisson process. A latent error is
invisible — it costs nothing by itself — but while it is present the
affected disk contributes one *extra* effective erasure to its stripes:
a disk failure that would have been tolerable is fatal if it lands while
an undetected latent error sits on a survivor. ``scrub_cycle_seconds``
is the detection window: an online scrub plane finds and read-repairs a
latent error within one cycle, so shorter cycles shrink the vulnerable
window; ``None`` models no scrubbing (the error persists until the disk
itself is rebuilt). This is the reliability argument for the service's
:class:`~repro.service.scrub.Scrubber`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Optional


from repro.core.base import RepairAlgorithm, RepairContext
from repro.core.scheduler import ExecutionOptions, _disk_id_matrix, execute_plan
from repro.ec.stripe import StripeLayout
from repro.errors import ConfigurationError
from repro.hdss.prober import ActiveProber
from repro.hdss.server import HighDensityStorageServer
from repro.reliability.lifetimes import YEAR_SECONDS, LifetimeModel
from repro.utils.rng import RngLike, derive_seed, make_rng
from repro.utils.validation import check_positive


@dataclass
class DurabilityResult:
    """Outcome of a durability Monte-Carlo run."""

    trials: int
    losses: int
    mission_seconds: float
    repair_seconds: float
    #: Fraction of trials that lost data within the mission.
    loss_probability: float
    #: 95% Wilson confidence interval on the loss probability.
    ci95: "tuple[float, float]"
    #: MTTDL estimate in seconds (inf when no trial lost data) — total
    #: observed up-time divided by the number of losses.
    mttdl_seconds: float
    #: Mean time of the loss event among losing trials (seconds), or None.
    mean_time_to_loss: Optional[float]
    #: Scrub detection window used for latent errors (None = no scrub /
    #: no latent-error model).
    scrub_cycle_seconds: Optional[float] = None
    #: Losses where an undetected latent error supplied the fatal erasure.
    latent_losses: int = 0

    @property
    def mttdl_years(self) -> float:
        return self.mttdl_seconds / YEAR_SECONDS

    def summary(self) -> dict:
        out = {
            "trials": self.trials,
            "losses": self.losses,
            "loss_probability": self.loss_probability,
            "ci95_low": self.ci95[0],
            "ci95_high": self.ci95[1],
            "mttdl_years": self.mttdl_years,
            "repair_seconds": self.repair_seconds,
        }
        if self.scrub_cycle_seconds is not None:
            out["scrub_cycle_seconds"] = self.scrub_cycle_seconds
        if self.latent_losses:
            out["latent_losses"] = self.latent_losses
        return out


def _wilson(losses: int, trials: int, z: float = 1.959964) -> "tuple[float, float]":
    if trials == 0:
        return (0.0, 1.0)
    p = losses / trials
    denom = 1 + z**2 / trials
    centre = (p + z**2 / (2 * trials)) / denom
    half = z * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2)) / denom
    return (max(0.0, centre - half), min(1.0, centre + half))


def simulate_durability(
    layout: StripeLayout,
    num_disks: int,
    lifetime: LifetimeModel,
    repair_seconds: float,
    mission_years: float = 10.0,
    trials: int = 1000,
    seed: RngLike = None,
    enclosure_size: Optional[int] = None,
    correlated_prob: float = 0.0,
    correlated_delay_seconds: float = 3600.0,
    latent_error_rate_per_disk_year: float = 0.0,
    scrub_cycle_seconds: Optional[float] = None,
) -> DurabilityResult:
    """Estimate mission loss probability and MTTDL for one repair speed.

    Args:
        layout: stripe placement (defines which disk subsets are fatal).
        num_disks: disks in the chassis (failure processes run per disk).
        lifetime: per-disk time-to-failure distribution.
        repair_seconds: how long a single-disk repair takes under the
            scheme being evaluated (see :func:`estimate_repair_seconds`).
        mission_years: horizon of each trial.
        trials: Monte-Carlo trials.
        seed: RNG seed (each trial derives an independent stream).
        enclosure_size: disks per enclosure/backplane; enables correlated
            failures (consecutive disk ids share an enclosure).
        correlated_prob: probability that a failure drags each *other*
            disk of its enclosure down within ``correlated_delay_seconds``
            — the backplane-event model that motivates the paper's
            multi-disk cooperative repair.
        correlated_delay_seconds: spread of the correlated follow-on
            failures after the trigger.
        latent_error_rate_per_disk_year: Poisson rate of silent
            corruption per disk-year. While a latent error is undetected
            its disk counts as one extra effective erasure for its
            stripes (the corrupt chunk cannot serve as a survivor).
        scrub_cycle_seconds: detection window of the online scrub plane —
            a latent error is found and read-repaired within one cycle.
            ``None`` with a nonzero latent rate models *no* scrubbing:
            the error persists until its disk is itself rebuilt.
    """
    check_positive("num_disks", num_disks)
    check_positive("repair_seconds", repair_seconds)
    check_positive("mission_years", mission_years)
    check_positive("trials", trials)
    if len(layout) == 0:
        raise ConfigurationError("layout has no stripes; nothing can be lost")
    if not 0.0 <= correlated_prob <= 1.0:
        raise ConfigurationError(f"correlated_prob must be in [0, 1], got {correlated_prob}")
    if correlated_prob > 0.0 and (enclosure_size is None or enclosure_size < 2):
        raise ConfigurationError(
            "correlated failures need enclosure_size >= 2"
        )
    if correlated_delay_seconds < 0:
        raise ConfigurationError("correlated_delay_seconds must be >= 0")
    if latent_error_rate_per_disk_year < 0:
        raise ConfigurationError(
            "latent_error_rate_per_disk_year must be >= 0, got "
            f"{latent_error_rate_per_disk_year}"
        )
    if scrub_cycle_seconds is not None and scrub_cycle_seconds <= 0:
        raise ConfigurationError(
            f"scrub_cycle_seconds must be > 0 when given, got {scrub_cycle_seconds}"
        )

    mission = mission_years * YEAR_SECONDS
    tolerance = {s.index: s.m for s in layout}
    stripe_disks = {s.index: s.disks for s in layout}

    def enclosure_peers(d: int) -> "list[int]":
        if enclosure_size is None:
            return []
        start = (d // enclosure_size) * enclosure_size
        return [
            p for p in range(start, min(start + enclosure_size, num_disks)) if p != d
        ]

    base_seed = (
        int(make_rng(seed).integers(0, 2**62))
        if not isinstance(seed, (int, type(None)))
        else (seed if seed is not None else 0)
    )

    # A latent error's vulnerable window: one scrub cycle when a scrub
    # plane runs, the rest of the mission when nothing ever verifies.
    latent_rate = latent_error_rate_per_disk_year / YEAR_SECONDS
    latent_window = (
        scrub_cycle_seconds if scrub_cycle_seconds is not None else math.inf
    )

    losses = 0
    latent_losses = 0
    loss_times = []
    survived_time_total = 0.0

    FAIL, REPAIR, LATENT = 0, 1, 2
    for trial in range(trials):
        rng = make_rng(derive_seed(base_seed, "durability", trial))
        # event heap: (time, kind, disk, epoch); per-disk epochs invalidate
        # stale events after state changes (e.g. a natural failure queued
        # behind a correlated one that already took the disk down). LATENT
        # events are slot-bound media decay, not disk-state transitions,
        # so they bypass the epoch check.
        heap = []
        epoch = [0] * num_disks
        first = lifetime.sample(num_disks, rng)
        for d in range(num_disks):
            if first[d] < mission:
                heapq.heappush(heap, (float(first[d]), FAIL, d, 0))
        if latent_rate > 0.0:
            for d in range(num_disks):
                t = float(rng.exponential(1.0 / latent_rate))
                while t < mission:
                    heapq.heappush(heap, (t, LATENT, d, -1))
                    t += float(rng.exponential(1.0 / latent_rate))
        down = set()
        latent_until = [-math.inf] * num_disks
        lost_at: Optional[float] = None
        lost_latent = False

        def stripe_dead(si: int, now: float) -> "tuple[int, int]":
            dead = sum(1 for disk in stripe_disks[si] if disk in down)
            latent = sum(
                1 for disk in stripe_disks[si]
                if disk not in down and latent_until[disk] > now
            )
            return dead, latent

        while heap:
            t, kind, d, ev_epoch = heapq.heappop(heap)
            if kind == LATENT:
                # Corruption on a down disk is moot: its rebuild decodes
                # fresh bytes from clean survivors.
                if d not in down:
                    latent_until[d] = max(latent_until[d], t + latent_window)
                    # Overlapping undetected errors can exceed m on their
                    # own — rare without scrubbing, but real loss.
                    for si in layout.stripe_set(d):
                        dead, latent = stripe_dead(si, t)
                        if dead + latent > tolerance[si]:
                            lost_at = t
                            lost_latent = True
                            break
                if lost_at is not None:
                    break
                continue
            if ev_epoch != epoch[d]:
                continue  # superseded by a later state change
            if kind == FAIL:
                epoch[d] += 1
                down.add(d)
                latent_until[d] = -math.inf  # subsumed by the full failure
                # fatal iff some stripe on d now exceeds m effective
                # erasures — down members plus undetected latent errors.
                if len(down) > 1 or latent_rate > 0.0:
                    for si in layout.stripe_set(d):
                        dead, latent = stripe_dead(si, t)
                        if dead + latent > tolerance[si]:
                            lost_at = t
                            lost_latent = latent > 0
                            break
                if lost_at is not None:
                    break
                repair_done = t + repair_seconds
                if repair_done < mission:
                    heapq.heappush(heap, (repair_done, REPAIR, d, epoch[d]))
                # correlated enclosure casualties
                if correlated_prob > 0.0:
                    for peer in enclosure_peers(d):
                        if peer in down:
                            continue
                        if rng.random() < correlated_prob:
                            delay = float(rng.uniform(0.0, correlated_delay_seconds))
                            epoch[peer] += 1
                            if t + delay < mission:
                                heapq.heappush(
                                    heap, (t + delay, FAIL, peer, epoch[peer])
                                )
            else:  # REPAIR
                epoch[d] += 1
                down.discard(d)
                next_fail = t + float(lifetime.sample(1, rng)[0])
                if next_fail < mission:
                    heapq.heappush(heap, (next_fail, FAIL, d, epoch[d]))
        if lost_at is not None:
            losses += 1
            if lost_latent:
                latent_losses += 1
            loss_times.append(lost_at)
            survived_time_total += lost_at
        else:
            survived_time_total += mission

    loss_probability = losses / trials
    mttdl = survived_time_total / losses if losses else float("inf")
    return DurabilityResult(
        trials=trials,
        losses=losses,
        mission_seconds=mission,
        repair_seconds=repair_seconds,
        loss_probability=loss_probability,
        ci95=_wilson(losses, trials),
        mttdl_seconds=mttdl,
        mean_time_to_loss=(sum(loss_times) / len(loss_times)) if loss_times else None,
        scrub_cycle_seconds=scrub_cycle_seconds if latent_rate > 0.0 else None,
        latent_losses=latent_losses,
    )


def estimate_repair_seconds(
    server: HighDensityStorageServer,
    algorithm: RepairAlgorithm,
    disk: int = 0,
    options: Optional[ExecutionOptions] = None,
) -> float:
    """Simulated single-disk repair time of ``algorithm`` on ``server``.

    Evaluates a *hypothetical* failure of ``disk`` (the server is left
    untouched) and returns the scheme's total transfer time — the number
    :func:`simulate_durability` consumes.
    """
    stripe_indices, survivor_ids, L_oracle = server.transfer_time_matrix([disk])
    if not stripe_indices:
        raise ConfigurationError(f"disk {disk} holds no stripes")
    disk_ids = _disk_id_matrix(server, stripe_indices, survivor_ids)
    if algorithm.requires_probing:
        prober = ActiveProber(server)
        _, _, L_plan = prober.estimate_matrix([disk])
    else:
        L_plan = L_oracle
    ctx = RepairContext(disk_ids=disk_ids)
    c = server.config.memory_chunks
    plan = algorithm.build_plan(L_plan, c, context=ctx)
    report = execute_plan(
        plan, L_oracle, c,
        stripe_indices=stripe_indices, survivor_ids=survivor_ids,
        disk_ids=disk_ids, options=options,
    )
    return report.total_time
