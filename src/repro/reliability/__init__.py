"""Durability analysis: what faster repair buys you.

The paper's motivation is availability: an HDSS must recover failed disks
before further failures exceed the code's tolerance ``m = n - k``. This
package closes the loop quantitatively:

* :mod:`repro.reliability.lifetimes` — disk lifetime distributions
  (exponential and Weibull, the standard models for disk populations);
* :mod:`repro.reliability.mttdl` — Monte-Carlo data-loss simulation of a
  chassis: seeded failure arrivals, per-scheme repair durations, loss
  declared when more than ``m`` of a stripe's disks are simultaneously
  down. Reports P(loss within mission time) and an MTTDL estimate, so the
  repair-time reductions of Experiments 1 and 5 translate into durability
  improvements.
"""

from repro.reliability.lifetimes import ExponentialLifetime, LifetimeModel, WeibullLifetime
from repro.reliability.mttdl import (
    DurabilityResult,
    estimate_repair_seconds,
    simulate_durability,
)

__all__ = [
    "LifetimeModel",
    "ExponentialLifetime",
    "WeibullLifetime",
    "DurabilityResult",
    "simulate_durability",
    "estimate_repair_seconds",
]
