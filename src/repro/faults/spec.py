"""Fault schedules: what goes wrong, where, and when.

A schedule is deliberately dumb data — a sorted tuple of events with a JSON
round-trip — so the same spec file drives both the byte-exact injector and
the timing simulators, and a seed reproduces the identical failure story
run after run.

Event kinds:

* ``disk_fail`` — the disk dies permanently at ``at``; its chunks are gone.
* ``sector_error`` — one chunk (``stripe``/``shard``) on ``disk`` becomes
  unreadable (a latent sector error / URE); the rest of the disk is fine.
* ``slow`` — bandwidth collapses by ``factor`` for ``duration`` seconds
  (transient contention, background scrub, vibration).
* ``hang`` — the disk stops answering for ``duration`` seconds (firmware
  stall); modeled as a near-total bandwidth collapse so per-read timeouts
  and hedging are what save the repair.
* ``process_crash`` — the *repair process itself* dies at ``at`` (a
  SIGKILL / power cut), raised as :class:`repro.faults.SimulatedCrash`.
  Only meaningful with a ``--journal``; a resumed run skips crashes that
  already fired. ``disk`` is ignored (defaults to 0).

Service-plane kinds (see :mod:`repro.faults.service`) target a *daemon*
of a repair cluster rather than a disk; ``daemon`` selects which one:

* ``daemon_crash`` — one daemon of a cluster dies at modeled time ``at``
  (``process_crash`` scoped to ``daemon``); peers must claim its shards.
* ``conn_reset`` — the daemon aborts (RST) the connection serving its
  ``at``-th request (0-based request ordinal, not seconds).
* ``slow_peer`` — requests from ordinal ``at`` onwards are delayed by
  ``duration`` wall seconds each, for ``factor`` consecutive requests.
* ``partial_frame`` — the daemon writes a truncated response frame for
  its ``at``-th request, then hangs up (torn write on the wire).
* ``clock_skew`` — the daemon's lease clock jumps by ``factor`` seconds
  (positive or negative) at request ordinal ``at``; exercises lease
  expiry and epoch fencing under clock trouble.

Silent-corruption kinds (also service-plane; ``at`` is a request
ordinal, ``stripe``/``shard`` name the victim chunk on ``disk``). They
mutate stored bytes *beneath* the checksum layer — the CRC32C sidecar is
left stale on purpose — so only a verify (foreground read or the scrub
plane) can catch them:

* ``bitrot`` — a few payload bytes flip in place (media decay, cosmic
  ray); payload length unchanged, sidecar stale.
* ``torn_write`` — the payload is truncated to a valid prefix (power cut
  mid-write on a non-atomic path); sidecar still describes the full
  chunk.
* ``misdirected_write`` — another chunk's payload lands at this chunk's
  path (firmware addressing bug); the bytes are internally healthy but
  belong to the wrong chunk, so only the sidecar disagreement exposes it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, make_rng

#: Supported event kinds, in spec order.
FAULT_KINDS = ("disk_fail", "sector_error", "slow", "hang", "process_crash")

#: Service-plane kinds targeting one daemon of a repair cluster. For the
#: connection-level kinds (everything but ``daemon_crash``) ``at`` is a
#: 0-based *request ordinal* on that daemon, which keeps injection
#: deterministic regardless of wall-clock scheduling.
#: Silent-corruption kinds: mutate one stored chunk's bytes beneath the
#: checksum layer, leaving the CRC32C sidecar stale. ``at`` is a request
#: ordinal (fired through the wire injector); ``stripe``/``shard``/``disk``
#: name the victim chunk.
CORRUPTION_FAULT_KINDS = ("bitrot", "torn_write", "misdirected_write")

SERVICE_FAULT_KINDS = (
    "daemon_crash", "conn_reset", "slow_peer", "partial_frame", "clock_skew",
) + CORRUPTION_FAULT_KINDS

#: Kinds the random generator draws from — ``process_crash`` is opt-in
#: (it only makes sense alongside a journal, so scripted specs add it
#: explicitly; random scenarios should not kill their own process).
GENERATED_KINDS = ("disk_fail", "sector_error", "slow", "hang")

#: Bandwidth-collapse factor used to model a hung disk.
HANG_FACTOR = 1e9


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        at: logical-clock time in seconds at which the fault strikes.
        kind: one of :data:`FAULT_KINDS`.
        disk: the disk the fault targets.
        stripe, shard: chunk coordinates, required for ``sector_error``.
        factor: bandwidth-collapse factor for ``slow`` (>= 1); request
            count for ``slow_peer``; skew seconds for ``clock_skew``.
        duration: window length for ``slow``/``hang``; ``None`` means the
            degradation persists for the rest of the run. Per-request
            delay for ``slow_peer``.
        daemon: target daemon index for service-plane kinds.
    """

    at: float
    kind: str
    disk: int = 0
    stripe: Optional[int] = None
    shard: Optional[int] = None
    factor: float = 4.0
    duration: Optional[float] = None
    daemon: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS + SERVICE_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS + SERVICE_FAULT_KINDS}"
            )
        if self.daemon < 0:
            raise ConfigurationError(
                f"fault daemon must be >= 0, got {self.daemon}"
            )
        if self.at < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.at}")
        if self.disk < 0:
            raise ConfigurationError(f"fault disk must be >= 0, got {self.disk}")
        if self.kind in ("sector_error",) + CORRUPTION_FAULT_KINDS and (
            self.stripe is None or self.shard is None
        ):
            raise ConfigurationError(
                f"{self.kind} events need explicit stripe and shard coordinates"
            )
        if self.kind == "slow" and self.factor < 1.0:
            raise ConfigurationError(
                f"slow factor must be >= 1 (a degradation), got {self.factor}"
            )
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError(
                f"fault duration must be > 0 when given, got {self.duration}"
            )

    @property
    def window_end(self) -> float:
        """End of a transient window (``inf`` for permanent events)."""
        if self.duration is None:
            return float("inf")
        return self.at + self.duration

    @property
    def effective_factor(self) -> float:
        """Bandwidth-collapse factor (hangs use :data:`HANG_FACTOR`)."""
        return HANG_FACTOR if self.kind == "hang" else self.factor

    def to_spec(self) -> Dict[str, object]:
        spec: Dict[str, object] = {"at": self.at, "kind": self.kind}
        if self.kind in SERVICE_FAULT_KINDS:
            spec["daemon"] = self.daemon
            # Corruption kinds address a chunk, so the victim disk matters
            # even though the event is daemon-scoped.
            if self.kind in CORRUPTION_FAULT_KINDS:
                spec["disk"] = self.disk
        else:
            spec["disk"] = self.disk
        if self.stripe is not None:
            spec["stripe"] = self.stripe
        if self.shard is not None:
            spec["shard"] = self.shard
        if self.kind in ("slow", "slow_peer", "clock_skew"):
            spec["factor"] = self.factor
        if self.duration is not None:
            spec["duration"] = self.duration
        return spec

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "FaultEvent":
        known = {"at", "kind", "disk", "stripe", "shard", "factor", "duration", "daemon"}
        extra = set(spec) - known
        if extra:
            raise ConfigurationError(f"unknown fault-event keys: {sorted(extra)}")
        kind = str(spec.get("kind", ""))
        try:
            return cls(
                at=float(spec["at"]),
                kind=kind,
                # process_crash and the service-plane kinds target the
                # repair process / a daemon, not a disk.
                disk=int(spec.get("disk", 0))
                if kind == "process_crash" or kind in SERVICE_FAULT_KINDS
                else int(spec["disk"]),
                stripe=None if spec.get("stripe") is None else int(spec["stripe"]),
                shard=None if spec.get("shard") is None else int(spec["shard"]),
                factor=float(spec.get("factor", 4.0)),
                duration=None if spec.get("duration") is None else float(spec["duration"]),
                daemon=int(spec.get("daemon", 0)),
            )
        except KeyError as exc:
            raise ConfigurationError(f"fault event missing key {exc.args[0]!r}") from None


class FaultSchedule:
    """An immutable, time-sorted sequence of :class:`FaultEvent`."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at, e.kind, e.disk))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    def for_kind(self, kind: str) -> List[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    def disk_fail_times(self) -> Dict[int, float]:
        """Earliest permanent-failure time per disk."""
        times: Dict[int, float] = {}
        for e in self.events:
            if e.kind == "disk_fail" and e.disk not in times:
                times[e.disk] = e.at
        return times

    def shifted(self, origin: float) -> "FaultSchedule":
        """Rebase the schedule so simulated time restarts at ``origin``.

        Used when a timing-plane repair re-plans mid-run: the replacement
        phase simulates from t=0 again, so every remaining event moves
        earlier by ``origin``. Events entirely in the past are dropped
        (they already happened to the server); transient windows straddling
        the origin keep only their remaining duration.
        """
        if origin <= 0:
            return self
        out: List[FaultEvent] = []
        for e in self.events:
            if e.at >= origin:
                out.append(FaultEvent(
                    at=e.at - origin, kind=e.kind, disk=e.disk,
                    stripe=e.stripe, shard=e.shard, factor=e.factor,
                    duration=e.duration, daemon=e.daemon,
                ))
            elif e.kind in ("slow", "hang") and e.window_end > origin:
                rest = None if e.duration is None else e.window_end - origin
                out.append(FaultEvent(
                    at=0.0, kind=e.kind, disk=e.disk,
                    factor=e.factor, duration=rest,
                ))
        return FaultSchedule(out)

    def for_daemon(self, daemon: int) -> "Tuple[FaultSchedule, FaultSchedule]":
        """Split a cluster schedule into one daemon's two injection planes.

        Returns ``(local, wire)``: *local* holds the generic disk/process
        kinds every daemon's data-path injector interprets, with
        ``daemon_crash`` events addressed to this daemon rewritten as
        ``process_crash`` (same modeled-clock semantics, so one spec file
        can kill daemon 2 of a fleet mid-repair); *wire* holds the
        connection-level kinds (``conn_reset``/``slow_peer``/
        ``partial_frame``/``clock_skew``) addressed to this daemon, for a
        :class:`repro.faults.service.ServiceFaultInjector`.
        """
        local: List[FaultEvent] = []
        wire: List[FaultEvent] = []
        for e in self.events:
            if e.kind in FAULT_KINDS:
                local.append(e)
            elif e.daemon != daemon:
                continue
            elif e.kind == "daemon_crash":
                local.append(FaultEvent(at=e.at, kind="process_crash"))
            else:
                wire.append(e)
        return FaultSchedule(local), FaultSchedule(wire)

    # ------------------------------------------------------------------ spec
    def to_spec(self) -> Dict[str, object]:
        return {"events": [e.to_spec() for e in self.events]}

    @classmethod
    def from_spec(cls, spec: "Dict[str, object] | Sequence[Dict[str, object]]") -> "FaultSchedule":
        """Parse a schedule from a dict (``{"events": [...]}``) or bare list."""
        if isinstance(spec, dict):
            events = spec.get("events", [])
        else:
            events = spec
        if not isinstance(events, (list, tuple)):
            raise ConfigurationError("fault spec 'events' must be a list")
        return cls([FaultEvent.from_spec(e) for e in events])

    @classmethod
    def from_json(cls, path: "str | Path") -> "FaultSchedule":
        p = Path(path)
        try:
            data = json.loads(p.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"fault spec {p} is not valid JSON: {exc}") from None
        return cls.from_spec(data)

    def to_json(self, path: "str | Path") -> Path:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps(self.to_spec(), indent=2, sort_keys=True) + "\n")
        return p

    def __repr__(self) -> str:
        kinds = {k: len(self.for_kind(k)) for k in FAULT_KINDS if self.for_kind(k)}
        return f"FaultSchedule({len(self.events)} events, {kinds})"


def generate_fault_schedule(
    seed: RngLike = 0,
    num_events: int = 4,
    horizon: float = 10.0,
    num_disks: int = 36,
    num_stripes: int = 0,
    num_shards: int = 9,
    kinds: Sequence[str] = GENERATED_KINDS,
    max_disk_fails: int = 1,
    slow_factor_range: Tuple[float, float] = (2.0, 16.0),
    duration_range: Tuple[float, float] = (0.5, 4.0),
) -> FaultSchedule:
    """Draw a reproducible random schedule (the ``hdpsr faults`` generator).

    Args:
        seed: RNG seed — identical seeds give identical schedules.
        num_events: how many events to draw.
        horizon: events land uniformly in ``[0, horizon)`` seconds.
        num_disks: disk-id range to target.
        num_stripes: stripe-id range for sector errors; when 0,
            ``sector_error`` is dropped from the kind pool.
        num_shards: shard-id range for sector errors (the code's ``n``).
        kinds: allowed event kinds.
        max_disk_fails: cap on permanent failures (keep the scenario inside
            the code's tolerance; extra draws fall back to ``slow``).
    """
    if num_events < 0:
        raise ConfigurationError(f"num_events must be >= 0, got {num_events}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon}")
    pool = [k for k in kinds if k in GENERATED_KINDS]
    if not pool:
        raise ConfigurationError(f"no valid kinds in {list(kinds)!r}")
    if num_stripes <= 0:
        pool = [k for k in pool if k != "sector_error"] or ["slow"]
    rng = make_rng(seed)
    events: List[FaultEvent] = []
    fails = 0
    for _ in range(num_events):
        at = float(rng.uniform(0.0, horizon))
        kind = pool[int(rng.integers(0, len(pool)))]
        if kind == "disk_fail" and fails >= max_disk_fails:
            kind = "hang" if "hang" in pool and "slow" not in pool else "slow"
        disk = int(rng.integers(0, num_disks))
        if kind == "disk_fail":
            fails += 1
            events.append(FaultEvent(at=at, kind="disk_fail", disk=disk))
        elif kind == "sector_error":
            events.append(FaultEvent(
                at=at, kind="sector_error", disk=disk,
                stripe=int(rng.integers(0, num_stripes)),
                shard=int(rng.integers(0, num_shards)),
            ))
        else:
            lo, hi = slow_factor_range
            dlo, dhi = duration_range
            # Hangs ignore ``factor`` (HANG_FACTOR applies); draw it only
            # for slow events so spec round-trips stay exact.
            factor = float(rng.uniform(lo, hi)) if kind == "slow" else 4.0
            events.append(FaultEvent(
                at=at, kind=kind, disk=disk,
                factor=factor,
                duration=float(rng.uniform(dlo, dhi)),
            ))
    return FaultSchedule(events)
