"""Schedule interpreters: mutate a live server, or answer timing queries.

:class:`FaultInjector` is the byte-exact side. It binds a schedule to a
:class:`~repro.hdss.server.HighDensityStorageServer` and, as the data-path
executor advances its logical clock past event times, really fails disks,
really poisons chunks, and really collapses bandwidth — so every downstream
consequence (``DiskFailedError`` on read, decode re-planning, data loss) is
exercised for real rather than signaled by a flag.

:class:`SimFaultModel` is the stateless timing side: the slot/interval
simulators ask it when a disk dies and how long a transfer *actually* takes
once slow/hang windows stretch it. Both read the same
:class:`~repro.faults.spec.FaultSchedule`, so one spec file tells one story
on both planes.

Approximation note: the data-path injector applies events at **read
boundaries** — the clock only moves when a read completes, so an event at
``t`` fires before the first read that starts at or after ``t``. Reads are
atomic; a fault cannot corrupt half a chunk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ec.stripe import ChunkId
from repro.faults.spec import FaultEvent, FaultSchedule
from repro.hdss.store import FaultyChunkStore
from repro.obs import current_registry, current_tracer


class SimulatedCrash(BaseException):
    """A scripted ``process_crash`` event killed the repair process.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so no
    retry/replan handler in the repair stack can accidentally absorb it —
    a SIGKILL is not a storage fault to route around. The CLI catches it
    at top level, points at ``--resume``, and exits with
    :data:`repro.faults.report.EXIT_CRASHED`.
    """

    def __init__(self, event: FaultEvent) -> None:
        super().__init__(
            f"simulated process crash at t={event.at:.6f}s (scripted fault)"
        )
        self.event = event


class FaultInjector:
    """Applies a :class:`FaultSchedule` to a live server as time advances.

    Usage: construct, call :meth:`attach` once (wraps the server's store so
    sector errors can be injected), then call :meth:`advance` with the
    executor's logical clock after every modeled transfer. ``advance``
    returns the events that just fired so the caller can react (re-plan,
    retry) immediately.
    """

    def __init__(
        self, server, schedule: FaultSchedule, *, skip_crashes: int = 0
    ) -> None:
        self.server = server
        self.schedule = schedule
        self._pending: List[FaultEvent] = list(schedule)
        self._next = 0
        #: ``process_crash`` events to swallow before raising again — a
        #: resumed run already "survived" the crashes that fired in prior
        #: incarnations (one per resume, plus the original).
        self.skip_crashes = skip_crashes
        self._crashes_skipped = 0
        #: Active transient windows per disk: list of (window_end, factor).
        self._windows: Dict[int, List[Tuple[float, float]]] = {}
        #: Events actually applied, by kind (feeds DataLossReport).
        self.applied: Dict[str, int] = {}
        self._attached = False

    # ---------------------------------------------------------------- attach
    def attach(self) -> "FaultInjector":
        """Wrap the server's store for sector-error injection (idempotent)."""
        if not self._attached:
            if not isinstance(self.server.store, FaultyChunkStore):
                self.server.store = FaultyChunkStore(self.server.store)
            self._attached = True
        return self

    @property
    def exhausted(self) -> bool:
        """True once every event has fired and every window has closed."""
        return self._next >= len(self._pending) and not any(self._windows.values())

    def next_change_time(self) -> float:
        """Earliest future time at which state will change (``inf`` if none).

        Lets the executor's timeout loop wait *just* long enough for a hang
        window to close instead of guessing.
        """
        times = [e.at for e in self._pending[self._next :]]
        times += [end for wins in self._windows.values() for (end, _) in wins]
        return min(times, default=float("inf"))

    # --------------------------------------------------------------- advance
    def advance(self, now: float) -> List[FaultEvent]:
        """Apply every event due at or before ``now``; return those applied.

        Window closings (heals) and event arrivals are interleaved in time
        order, so a slow window that ends before the next event starts is
        healed first — exactly the sequence a wall clock would produce.
        """
        fired: List[FaultEvent] = []
        while True:
            ev_time = (
                self._pending[self._next].at
                if self._next < len(self._pending)
                else float("inf")
            )
            heal_time = min(
                (end for wins in self._windows.values() for (end, _) in wins),
                default=float("inf"),
            )
            if min(ev_time, heal_time) > now:
                break
            if heal_time <= ev_time:
                self._close_windows(heal_time)
            else:
                event = self._pending[self._next]
                self._next += 1
                if self._apply(event):
                    fired.append(event)
        return fired

    def _close_windows(self, upto: float) -> None:
        """Expire windows ending at/before ``upto``; restore or re-degrade."""
        for disk_id in sorted(self._windows):
            wins = self._windows[disk_id]
            live = [(end, f) for (end, f) in wins if end > upto]
            if len(live) == len(wins):
                continue
            self._windows[disk_id] = live
            disk = self.server.disk(disk_id)
            if disk.is_failed:
                continue
            if live:
                # An overlapping window is still open — keep its collapse.
                disk.degrade(max(f for (_, f) in live))
            else:
                disk.heal()
        self._windows = {d: w for d, w in self._windows.items() if w}

    def _apply(self, event: FaultEvent) -> bool:
        """Mutate server state for one event; False when it was a no-op."""
        if event.kind == "process_crash":
            if self._crashes_skipped < self.skip_crashes:
                self._crashes_skipped += 1
                return False  # already fired in a previous incarnation
            self.applied[event.kind] = self.applied.get(event.kind, 0) + 1
            self._observe(event)
            raise SimulatedCrash(event)
        disk_id = event.disk
        if disk_id >= len(self.server.disks):
            return False  # spec targets a disk this server doesn't have
        disk = self.server.disk(disk_id)
        if event.kind == "disk_fail":
            if disk.is_failed:
                return False
            self.server.fail_disk(disk_id, destroy_data=True)
            self._windows.pop(disk_id, None)
        elif event.kind == "sector_error":
            if disk.is_failed:
                return False
            self.attach()
            self.server.store.mark_bad(
                disk_id, ChunkId(int(event.stripe), int(event.shard))
            )
        else:  # slow / hang
            if disk.is_failed:
                return False
            self._windows.setdefault(disk_id, []).append(
                (event.window_end, event.effective_factor)
            )
            disk.degrade(max(f for (_, f) in self._windows[disk_id]))
        self.applied[event.kind] = self.applied.get(event.kind, 0) + 1
        self._observe(event)
        return True

    @staticmethod
    def _observe(event: FaultEvent) -> None:
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "hdpsr_faults_injected_total", "Fault events applied to the server."
            ).labels(kind=event.kind).inc()
        tracer = current_tracer()
        if tracer is not None and tracer.enabled:
            tracer.instant(
                "fault",
                event.kind,
                at=event.at,
                disk=event.disk,
                stripe=event.stripe,
                shard=event.shard,
            )


class SimFaultModel:
    """Timing-plane view of a schedule: no server, just arithmetic.

    The simulators ask two questions: *when does this disk die* and *how
    long does a transfer starting at ``t`` really take* once slow/hang
    windows are laid over it. Durations are stretched by integrating the
    bandwidth-collapse factor across each window the transfer overlaps.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._fail_times = schedule.disk_fail_times()
        self._windows: Dict[int, List[FaultEvent]] = {}
        for e in schedule:
            if e.kind in ("slow", "hang"):
                self._windows.setdefault(e.disk, []).append(e)
        for wins in self._windows.values():
            wins.sort(key=lambda e: e.at)

    def fail_time(self, disk_id: int) -> Optional[float]:
        """Permanent-failure time for a disk, or ``None`` if it survives."""
        return self._fail_times.get(disk_id)

    def _factor_at(self, disk_id: int, t: float) -> float:
        factor = 1.0
        for e in self._windows.get(disk_id, ()):  # few windows; linear is fine
            if e.at <= t < e.window_end:
                factor = max(factor, e.effective_factor)
        return factor

    def _next_boundary(self, disk_id: int, t: float) -> float:
        nxt = float("inf")
        for e in self._windows.get(disk_id, ()):
            if e.at > t:
                nxt = min(nxt, e.at)
            if t < e.window_end < nxt:
                nxt = min(nxt, e.window_end)
        return nxt

    def effective_duration(self, disk_id: int, start: float, base: float) -> float:
        """Stretch ``base`` (fault-free seconds) across slow/hang windows.

        A window with factor ``f`` delivers work at rate ``1/f``; the
        transfer finishes when the integrated rate equals ``base``.
        """
        if base <= 0 or disk_id not in self._windows:
            return base
        t = float(start)
        remaining = float(base)  # work left, in fault-free seconds
        for _ in range(4 * len(self._windows[disk_id]) + 2):
            factor = self._factor_at(disk_id, t)
            boundary = self._next_boundary(disk_id, t)
            if boundary == float("inf"):
                return t + remaining * factor - start
            capacity = (boundary - t) / factor
            if capacity >= remaining:
                return t + remaining * factor - start
            remaining -= capacity
            t = boundary
        return t + remaining - start  # windows exhausted; run at nominal
