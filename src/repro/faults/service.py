"""Wire-level fault injection for the repair daemon (the chaos plane).

:class:`ServiceFaultInjector` interprets the connection-level kinds of
:data:`repro.faults.spec.SERVICE_FAULT_KINDS` for one daemon. Where the
data-path :class:`~repro.faults.injector.FaultInjector` advances on the
*modeled clock*, the wire injector advances on the daemon's **request
ordinal** — the 0-based count of requests it has dispatched — because
wall-clock request arrival is scheduler noise while the request sequence
is reproducible run after run.

The injector does not touch sockets itself; the daemon asks it *what to
do* to the request it is about to serve and applies the verdict:

* ``reset``   — abort the connection (RST) instead of answering;
* ``partial`` — write a torn prefix of the response, then hang up;
* ``delay``   — sleep ``delay_seconds`` before answering (slow peer);
* ``skew``    — step the cluster lease clock by ``skew_seconds``;
* ``corruptions`` — chunk-corruption events (``bitrot``/``torn_write``/
  ``misdirected_write``) to apply to the store *before* serving the
  request, via :func:`apply_corruption`.

``daemon_crash`` events are *not* handled here: they fire on the modeled
clock exactly like ``process_crash`` (see
:meth:`repro.faults.spec.FaultSchedule.for_daemon`), so a crash lands
mid-repair deterministically even when no request is in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.faults.spec import (
    CORRUPTION_FAULT_KINDS,
    SERVICE_FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
)
from repro.obs.context import current_registry


@dataclass
class WireVerdict:
    """What the daemon should do to the request it is about to serve."""

    #: Abort the connection without answering (``conn_reset``).
    reset: bool = False
    #: Answer with a torn frame, then hang up (``partial_frame``).
    partial: bool = False
    #: Seconds to sleep before answering (``slow_peer`` windows).
    delay_seconds: float = 0.0
    #: Lease-clock step to apply right now (``clock_skew``).
    skew_seconds: float = 0.0
    #: Chunk-corruption events to apply to the store before serving
    #: (``bitrot``/``torn_write``/``misdirected_write``).
    corruptions: List[FaultEvent] = field(default_factory=list)
    #: Events that fired on this request (for tracing/reporting).
    fired: List[FaultEvent] = field(default_factory=list)

    @property
    def disruptive(self) -> bool:
        return self.reset or self.partial


class ServiceFaultInjector:
    """Request-ordinal interpreter of one daemon's wire-fault schedule.

    Args:
        schedule: the *wire* half of :meth:`FaultSchedule.for_daemon`
            (events whose kind is connection-level; events of other kinds
            are ignored).
        daemon: this daemon's index, for reporting only — the schedule is
            assumed to be pre-filtered.
    """

    def __init__(self, schedule: FaultSchedule, daemon: int = 0) -> None:
        self.daemon = daemon
        self.requests_seen = 0
        #: Events applied so far, by kind.
        self.applied: dict = {}
        self._oneshots: List[FaultEvent] = sorted(
            (
                e
                for e in schedule
                if e.kind in ("conn_reset", "partial_frame", "clock_skew")
                + CORRUPTION_FAULT_KINDS
            ),
            key=lambda e: e.at,
        )
        self._slow: List[FaultEvent] = [
            e for e in schedule if e.kind == "slow_peer"
        ]

    @property
    def exhausted(self) -> bool:
        """True once no event can fire on any future request."""
        if self._oneshots:
            return False
        horizon = self.requests_seen
        return all(e.at + max(1.0, e.factor) <= horizon for e in self._slow)

    def _count(self, event: FaultEvent) -> None:
        self.applied[event.kind] = self.applied.get(event.kind, 0) + 1
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "hdpsr_faults_injected_total",
                "Fault events applied to the server.",
            ).labels(kind=event.kind).inc()

    def on_request(self) -> WireVerdict:
        """Advance one request ordinal; return the verdict for it."""
        ordinal = self.requests_seen
        self.requests_seen += 1
        verdict = WireVerdict()
        keep: List[FaultEvent] = []
        for e in self._oneshots:
            if e.at > ordinal:
                keep.append(e)
                continue
            if e.kind == "conn_reset":
                verdict.reset = True
            elif e.kind == "partial_frame":
                verdict.partial = True
            elif e.kind in CORRUPTION_FAULT_KINDS:
                verdict.corruptions.append(e)
            else:  # clock_skew
                verdict.skew_seconds += e.factor
            verdict.fired.append(e)
            self._count(e)
        self._oneshots = keep
        for e in self._slow:
            # ``at`` opens a window of ``factor`` consecutive requests,
            # each delayed by ``duration`` seconds.
            width = max(1.0, e.factor)
            if e.at <= ordinal < e.at + width:
                verdict.delay_seconds += e.duration or 0.0
                verdict.fired.append(e)
                self._count(e)
        return verdict


def apply_corruption(store, event: FaultEvent):
    """Mutate the victim chunk's stored bytes per ``event.kind``.

    Writes *beneath* the store's checksum layer — straight into the chunk
    file, leaving the CRC32C sidecar stale — which is the whole point:
    the corruption is silent until a verify (foreground read or scrub)
    touches it. Needs a file-backed store (:class:`FileChunkStore` or a
    :class:`ShardedChunkStore` over them); sharded stores are descended
    through ``shard_for``. Returns the mutated chunk's path.

    * ``bitrot`` flips three payload bytes in place (first, middle, last);
    * ``torn_write`` truncates the payload to its first half (min 1 byte);
    * ``misdirected_write`` overwrites the payload with another chunk's
      bytes from the same disk (the first donor whose payload differs),
      falling back to a byte flip when the disk holds no other chunk.
    """
    if event.kind not in CORRUPTION_FAULT_KINDS:
        raise ConfigurationError(
            f"apply_corruption got a {event.kind!r} event; expected one of "
            f"{CORRUPTION_FAULT_KINDS}"
        )
    from repro.ec.stripe import ChunkId
    from repro.errors import ChunkNotFoundError

    chunk_id = ChunkId(int(event.stripe), int(event.shard))
    backend = (
        store.shard_for(event.disk) if hasattr(store, "shard_for") else store
    )
    chunk_path = getattr(backend, "_chunk_path", None)
    if chunk_path is None:
        raise ConfigurationError(
            f"corruption faults need a file-backed chunk store, got "
            f"{type(backend).__name__}"
        )
    path = chunk_path(event.disk, chunk_id)
    if not path.exists():
        raise ChunkNotFoundError(
            f"cannot corrupt chunk {chunk_id}: not on disk {event.disk}"
        )

    def _flip(payload: bytes) -> bytes:
        mutated = bytearray(payload)
        for off in {0, len(mutated) // 2, len(mutated) - 1}:
            mutated[off] ^= 0xFF
        return bytes(mutated)

    payload = path.read_bytes()
    if event.kind == "bitrot":
        mutated = _flip(payload) if payload else b"\xff"
    elif event.kind == "torn_write":
        mutated = payload[: max(1, len(payload) // 2)]
    else:  # misdirected_write
        mutated = None
        for donor in sorted(backend.chunks_on_disk(event.disk)):
            if donor == chunk_id:
                continue
            donor_payload = chunk_path(event.disk, donor).read_bytes()
            if donor_payload != payload:
                mutated = donor_payload
                break
        if mutated is None:
            mutated = _flip(payload) if payload else b"\xff"
    path.write_bytes(mutated)
    return path


def is_service_schedule(schedule: FaultSchedule) -> bool:
    """True when the schedule holds at least one service-plane event."""
    return any(e.kind in SERVICE_FAULT_KINDS for e in schedule)
