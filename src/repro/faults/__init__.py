"""``repro.faults`` — deterministic fault injection for the repair stack.

A :class:`~repro.faults.spec.FaultSchedule` is a seed-reproducible list of
timed :class:`~repro.faults.spec.FaultEvent` — permanent disk failures,
latent sector errors on specific chunks, transient bandwidth collapses,
hung I/O windows — expressed on the *logical repair clock* (seconds of
modeled transfer time since the recovery started).

Two consumers interpret the same schedule:

* :class:`~repro.faults.injector.FaultInjector` binds a schedule to a live
  :class:`~repro.hdss.server.HighDensityStorageServer` and mutates real
  state (fails disks, degrades bandwidth, poisons chunks) as the byte-exact
  data path advances its clock;
* :class:`~repro.faults.injector.SimFaultModel` answers the timing
  executors' questions (``fail_time``, ``effective_duration``) without any
  server, so plan simulations see the same failure timeline.

Recovery outcomes under faults land in a
:class:`~repro.faults.report.DataLossReport` — per-stripe
recovered / recovered-after-replan / lost — instead of an exception.
"""

from repro.faults.injector import FaultInjector, SimFaultModel, SimulatedCrash
from repro.faults.report import (
    EXIT_CRASHED,
    EXIT_DATA_LOSS,
    LOST,
    RECOVERED,
    REPLANNED,
    DataLossReport,
)
from repro.faults.service import (
    ServiceFaultInjector,
    WireVerdict,
    apply_corruption,
    is_service_schedule,
)
from repro.faults.spec import (
    CORRUPTION_FAULT_KINDS,
    FAULT_KINDS,
    GENERATED_KINDS,
    SERVICE_FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    generate_fault_schedule,
)

__all__ = [
    "CORRUPTION_FAULT_KINDS",
    "FAULT_KINDS",
    "GENERATED_KINDS",
    "SERVICE_FAULT_KINDS",
    "ServiceFaultInjector",
    "WireVerdict",
    "apply_corruption",
    "is_service_schedule",
    "FaultEvent",
    "FaultSchedule",
    "generate_fault_schedule",
    "FaultInjector",
    "SimFaultModel",
    "SimulatedCrash",
    "DataLossReport",
    "RECOVERED",
    "REPLANNED",
    "LOST",
    "EXIT_CRASHED",
    "EXIT_DATA_LOSS",
]
