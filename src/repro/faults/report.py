"""Graceful-degradation reporting: what a faulted recovery actually saved.

When fewer than ``k`` readable shards remain for a stripe the repair no
longer throws — it records the stripe as *lost* here and keeps going, so a
single unlucky stripe cannot abort the rescue of every other one. The
report carries per-stripe outcomes plus the retry/hedge/replan accounting
the CLI and tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import DataLossError

#: Per-stripe outcomes.
RECOVERED = "recovered"
REPLANNED = "recovered-after-replan"
LOST = "lost"

#: CLI exit code for a recovery that lost data.
EXIT_DATA_LOSS = 3

#: CLI exit code for a repair killed by a scripted ``process_crash``
#: (the run is resumable with ``--resume`` when journaled).
EXIT_CRASHED = 4


@dataclass
class DataLossReport:
    """Outcome of one recovery run under (possible) faults.

    ``stripes`` maps every repaired stripe index to :data:`RECOVERED`,
    :data:`REPLANNED`, or :data:`LOST`. The counters quantify the recovery
    side's work: how often reads timed out and were retried, how many reads
    were hedged to a different survivor, how many stripes were re-planned,
    and — the HD-PSR payoff — how many already-read chunks the running
    decode salvaged versus how many had to be read again.
    """

    stripes: Dict[int, str] = field(default_factory=dict)
    #: Faults the injector actually applied (by kind).
    faults_injected: Dict[str, int] = field(default_factory=dict)
    #: Reads that timed out at least once.
    timeouts: int = 0
    #: Timed-out reads retried after backoff.
    retries: int = 0
    #: Reads re-issued against a different survivor (hedging).
    hedged_reads: int = 0
    #: Stripes whose decode was re-planned onto a new survivor set.
    replans: int = 0
    #: Stripes that fell back from salvage to a from-scratch decode.
    fresh_restarts: int = 0
    #: Already-fed chunks whose reads the running decode made reusable.
    salvaged_chunks: int = 0
    #: Chunks read more than once because salvage was not possible.
    reread_chunks: int = 0
    #: Chunk reads that failed CRC32C verification (silent corruption).
    checksum_failures: int = 0
    #: Stripes whose terminal outcome was replayed from the journal.
    resumed_stripes: int = 0
    #: Journaled chunk payloads re-put during replay (zero disk reads).
    replayed_chunks: int = 0

    # ----------------------------------------------------------------- state
    def record(self, stripe_index: int, outcome: str) -> None:
        if outcome not in (RECOVERED, REPLANNED, LOST):
            raise ValueError(f"unknown stripe outcome {outcome!r}")
        self.stripes[int(stripe_index)] = outcome

    @property
    def recovered(self) -> List[int]:
        return sorted(s for s, o in self.stripes.items() if o == RECOVERED)

    @property
    def replanned(self) -> List[int]:
        return sorted(s for s, o in self.stripes.items() if o == REPLANNED)

    @property
    def lost(self) -> List[int]:
        return sorted(s for s, o in self.stripes.items() if o == LOST)

    @property
    def has_loss(self) -> bool:
        return any(o == LOST for o in self.stripes.values())

    @property
    def degraded(self) -> bool:
        """True when the run needed re-planning or lost data (warn-worthy)."""
        return self.has_loss or bool(self.replanned) or self.fresh_restarts > 0

    @property
    def total_faults(self) -> int:
        return sum(self.faults_injected.values())

    @property
    def exit_code(self) -> int:
        """CLI convention: 0 for full recovery (replans warn), 3 for loss."""
        return EXIT_DATA_LOSS if self.has_loss else 0

    def count_fault(self, kind: str, n: int = 1) -> None:
        self.faults_injected[kind] = self.faults_injected.get(kind, 0) + n

    def merge(self, other: "DataLossReport") -> "DataLossReport":
        """Fold another report into this one (multi-phase recoveries)."""
        self.stripes.update(other.stripes)
        for kind, n in other.faults_injected.items():
            self.count_fault(kind, n)
        self.timeouts += other.timeouts
        self.retries += other.retries
        self.hedged_reads += other.hedged_reads
        self.replans += other.replans
        self.fresh_restarts += other.fresh_restarts
        self.salvaged_chunks += other.salvaged_chunks
        self.reread_chunks += other.reread_chunks
        self.checksum_failures += other.checksum_failures
        self.resumed_stripes += other.resumed_stripes
        self.replayed_chunks += other.replayed_chunks
        return self

    def raise_for_loss(self) -> None:
        """Raise :class:`DataLossError` when any stripe was lost."""
        if self.has_loss:
            lost = self.lost
            raise DataLossError(
                f"{len(lost)} stripe(s) unrecoverable: {lost[:8]}"
                f"{'...' if len(lost) > 8 else ''}"
            )

    def summary(self) -> Dict[str, object]:
        return {
            "stripes": len(self.stripes),
            "recovered": len(self.recovered),
            "recovered_after_replan": len(self.replanned),
            "lost": len(self.lost),
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "timeouts": self.timeouts,
            "retries": self.retries,
            "hedged_reads": self.hedged_reads,
            "replans": self.replans,
            "fresh_restarts": self.fresh_restarts,
            "salvaged_chunks": self.salvaged_chunks,
            "reread_chunks": self.reread_chunks,
            "checksum_failures": self.checksum_failures,
            "resumed_stripes": self.resumed_stripes,
            "replayed_chunks": self.replayed_chunks,
            "exit_code": self.exit_code,
        }

    def __repr__(self) -> str:
        return (
            f"DataLossReport(recovered={len(self.recovered)}, "
            f"replanned={len(self.replanned)}, lost={len(self.lost)}, "
            f"faults={self.total_faults})"
        )
