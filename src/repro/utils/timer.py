"""Wall-clock timing helpers for the *algorithm running time* experiments.

Experiments 2 and 4 of the paper measure how long HD-PSR-AP / HD-PSR-AS take
to derive ``P_a``. :class:`Stopwatch` provides ``perf_counter``-based timing
with accumulate/reset semantics; :func:`timed` is a context-manager shortcut.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, Tuple, TypeVar

T = TypeVar("T")


class Stopwatch:
    """Accumulating wall-clock stopwatch based on ``time.perf_counter``.

    >>> sw = Stopwatch()
    >>> sw.start(); _ = sum(range(100)); sw.stop()  # doctest: +SKIP
    >>> sw.elapsed  # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: "float | None" = None

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently started."""
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (including the live segment if running)."""
        live = time.perf_counter() - self._started_at if self.running else 0.0
        return self._elapsed + live

    def start(self) -> "Stopwatch":
        if self.running:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop and return total elapsed seconds."""
        if not self.running:
            raise RuntimeError("Stopwatch is not running")
        assert self._started_at is not None
        self._elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self._elapsed

    def reset(self) -> None:
        self._elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Context manager yielding a running :class:`Stopwatch`.

    >>> with timed() as sw:
    ...     _ = sorted(range(10))
    >>> sw.elapsed >= 0
    True
    """
    sw = Stopwatch().start()
    try:
        yield sw
    finally:
        if sw.running:
            sw.stop()


def time_call(func: Callable[..., T], *args: object, **kwargs: object) -> Tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    t0 = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - t0
