"""CRC32C (Castagnoli) checksums for chunk integrity and the repair journal.

CRC32C is the polynomial used by iSCSI, ext4 metadata, and most storage
systems that pair data with sidecar checksums — it detects the burst and
bit-flip corruption patterns disks actually produce, and hardware
acceleration exists everywhere the reproduction might eventually run.

The implementation prefers a native ``crc32c`` module when one is
installed; otherwise it falls back to a pure-Python *slicing-by-4* loop:
four 256-entry tables consume one little-endian word per step instead of
one byte, roughly 3x the throughput of the classic byte-at-a-time table
walk. Every chunk read verifies a sidecar, so this is a hot path for the
repair service; production deployments install the C extension and nothing
else changes.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import List, Optional

import numpy as np

#: Reflected CRC32C (Castagnoli) polynomial.
_POLY = 0x82F63B78

_TABLE: Optional[list] = None
_TABLES: Optional[List[list]] = None

#: Unpacker for the 4-byte little-endian words the sliced loop consumes.
_WORDS = struct.Struct("<I")

try:  # pragma: no cover - exercised only where the C module exists
    from crc32c import crc32c as _native_crc32c
except ImportError:
    _native_crc32c = None


def _table() -> list:
    global _TABLE
    if _TABLE is None:
        table = []
        for i in range(256):
            crc = i
            for _ in range(8):
                crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
            table.append(crc)
        _TABLE = table
    return _TABLE


def _tables() -> List[list]:
    """The four slicing tables: ``_TABLES[j][b]`` advances byte ``b`` that
    sits ``j`` positions into the 4-byte word being folded."""
    global _TABLES
    if _TABLES is None:
        t0 = _table()
        tables = [t0]
        for _ in range(3):
            prev = tables[-1]
            tables.append([t0[v & 0xFF] ^ (v >> 8) for v in prev])
        _TABLES = tables
    return _TABLES


def _crc32c_bytewise(data: bytes, value: int = 0) -> int:
    """Reference byte-at-a-time implementation (kept for equivalence tests)."""
    table = _table()
    crc = (~value) & 0xFFFFFFFF
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return (~crc) & 0xFFFFFFFF


def _crc32c_sliced(data: bytes, value: int = 0) -> int:
    """Slicing-by-4: fold whole little-endian words, byte-walk the tail."""
    t0, t1, t2, t3 = _tables()
    crc = (~value) & 0xFFFFFFFF
    split = len(data) & ~3
    if split:
        # array('I') reinterprets the buffer as native 32-bit words in one
        # memcpy; big-endian hosts fall back to explicit LE unpacking.
        if sys.byteorder == "little":
            words = array("I", data[:split])
        else:  # pragma: no cover - no big-endian CI host
            words = (w for (w,) in _WORDS.iter_unpack(data[:split]))
        for word in words:
            word ^= crc
            crc = (
                t3[word & 0xFF]
                ^ t2[(word >> 8) & 0xFF]
                ^ t1[(word >> 16) & 0xFF]
                ^ t0[word >> 24]
            )
    for byte in data[split:]:
        crc = t0[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return (~crc) & 0xFFFFFFFF


def crc32c(data: "bytes | bytearray | memoryview | np.ndarray", value: int = 0) -> int:
    """CRC32C of ``data``, optionally continuing from a previous ``value``.

    Accepts raw bytes or a 1-D uint8 numpy array (chunks are stored as the
    latter). Returns an unsigned 32-bit integer.
    """
    if isinstance(data, np.ndarray):
        data = np.ascontiguousarray(data, dtype=np.uint8).tobytes()
    if _native_crc32c is not None:  # pragma: no cover
        return _native_crc32c(bytes(data), value)
    return _crc32c_sliced(bytes(data), value)


def verify_crc32c(data: "bytes | np.ndarray", expected: int) -> bool:
    """True when ``data`` hashes to ``expected``."""
    return crc32c(data) == (expected & 0xFFFFFFFF)
