"""CRC32C (Castagnoli) checksums for chunk integrity and the repair journal.

CRC32C is the polynomial used by iSCSI, ext4 metadata, and most storage
systems that pair data with sidecar checksums — it detects the burst and
bit-flip corruption patterns disks actually produce, and hardware
acceleration exists everywhere the reproduction might eventually run.

The implementation prefers a native ``crc32c`` module when one is
installed; otherwise it falls back to a table-driven pure-Python loop.
Chunk sizes in the test and CI configurations are small (KiB-scale), so
the fallback is more than fast enough; production deployments install the
C extension and nothing else changes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Reflected CRC32C (Castagnoli) polynomial.
_POLY = 0x82F63B78

_TABLE: Optional[list] = None

try:  # pragma: no cover - exercised only where the C module exists
    from crc32c import crc32c as _native_crc32c
except ImportError:
    _native_crc32c = None


def _table() -> list:
    global _TABLE
    if _TABLE is None:
        table = []
        for i in range(256):
            crc = i
            for _ in range(8):
                crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
            table.append(crc)
        _TABLE = table
    return _TABLE


def crc32c(data: "bytes | bytearray | memoryview | np.ndarray", value: int = 0) -> int:
    """CRC32C of ``data``, optionally continuing from a previous ``value``.

    Accepts raw bytes or a 1-D uint8 numpy array (chunks are stored as the
    latter). Returns an unsigned 32-bit integer.
    """
    if isinstance(data, np.ndarray):
        data = np.ascontiguousarray(data, dtype=np.uint8).tobytes()
    if _native_crc32c is not None:  # pragma: no cover
        return _native_crc32c(bytes(data), value)
    table = _table()
    crc = (~value) & 0xFFFFFFFF
    for byte in bytes(data):
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return (~crc) & 0xFFFFFFFF


def verify_crc32c(data: "bytes | np.ndarray", expected: int) -> bool:
    """True when ``data`` hashes to ``expected``."""
    return crc32c(data) == (expected & 0xFFFFFFFF)
