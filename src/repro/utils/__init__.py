"""Shared utilities: size units, seeded RNG, ASCII tables, timers, validation."""

from repro.utils.units import (
    KiB,
    MiB,
    GiB,
    TiB,
    format_bytes,
    format_duration,
    parse_size,
)
from repro.utils.rng import derive_seed, make_rng, spawn_rngs
from repro.utils.tables import AsciiTable, render_table
from repro.utils.timer import Stopwatch, timed
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_probability,
    check_type,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "format_bytes",
    "format_duration",
    "parse_size",
    "derive_seed",
    "make_rng",
    "spawn_rngs",
    "AsciiTable",
    "render_table",
    "Stopwatch",
    "timed",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_type",
]
