"""Seeded random-number helpers.

Every stochastic component in the library (workload generators, disk speed
profiles, failure injection) takes either an explicit
``numpy.random.Generator`` or an integer seed. These helpers centralise seed
derivation so that one experiment seed deterministically fans out into
independent per-component streams — a requirement for bit-reproducible
experiment tables.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or None.

    Passing an existing generator returns it unchanged (shared stream);
    passing ``None`` gives fresh OS entropy; integers give deterministic
    streams.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: "str | int") -> int:
    """Derive a stable 63-bit child seed from a base seed and labels.

    Uses BLAKE2b over the textual labels so that e.g.
    ``derive_seed(42, "disk", 3)`` is stable across Python versions and
    machines (unlike ``hash()``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(base_seed)).encode())
    for label in labels:
        h.update(b"\x00")
        h.update(str(label).encode())
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)


def spawn_rngs(seed: RngLike, count: int, label: str = "stream") -> List[np.random.Generator]:
    """Spawn ``count`` independent generators from one seed.

    When ``seed`` is an integer the streams are reproducible; when it is a
    generator or ``None`` we draw a base seed from it first.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        base = int(np.random.default_rng().integers(0, 2**63 - 1))
    else:
        base = int(seed)
    return [make_rng(derive_seed(base, label, i)) for i in range(count)]


def optional_seed(seed: RngLike) -> Optional[int]:
    """Normalise a seed-like value to an int or None (for trace metadata)."""
    if seed is None or isinstance(seed, np.random.Generator):
        return None
    return int(seed)
