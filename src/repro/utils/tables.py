"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's figures plot; this
module renders them as aligned ASCII/Markdown tables without any third-party
dependency so reports work in CI logs and EXPERIMENTS.md alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence


def _cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


@dataclass
class AsciiTable:
    """Accumulate rows then render as an aligned text or Markdown table.

    Example:
        >>> t = AsciiTable(["scheme", "time (s)"], title="Exp 1")
        >>> t.add_row(["FSR", 12.5])
        >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: Optional[str] = None
    float_fmt: str = ".3f"
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[Any]) -> "AsciiTable":
        row = [_cell(v, self.float_fmt) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(row)
        return self

    def _widths(self) -> List[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self, markdown: bool = False) -> str:
        """Render the table; ``markdown=True`` emits GitHub-flavoured pipes."""
        widths = self._widths()
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        if markdown:
            lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(self.headers, widths)) + " |")
            lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
            for row in self.rows:
                lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
        else:
            sep = "+".join("-" * (w + 2) for w in widths)
            sep = "+" + sep + "+"
            lines.append(sep)
            lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(self.headers, widths)) + " |")
            lines.append(sep)
            for row in self.rows:
                lines.append("| " + " | ".join(c.rjust(w) for c, w in zip(row, widths)) + " |")
            lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_table(
    headers: Sequence[str],
    rows: Iterable[Iterable[Any]],
    title: Optional[str] = None,
    markdown: bool = False,
    float_fmt: str = ".3f",
) -> str:
    """One-shot helper: build and render an :class:`AsciiTable`."""
    table = AsciiTable(list(headers), title=title, float_fmt=float_fmt)
    for row in rows:
        table.add_row(row)
    return table.render(markdown=markdown)
