"""Binary size units and human-readable formatting.

The paper speaks in MiB chunks and GiB disks; internally everything is plain
``int`` bytes. This module is the single place where strings like
``"64MiB"`` are converted to bytes and back, so experiments and configs can
use the paper's notation verbatim.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError

#: One kibibyte (2**10 bytes).
KiB: int = 1024
#: One mebibyte (2**20 bytes) — the paper's chunk sizes are multiples of this.
MiB: int = 1024 * KiB
#: One gibibyte (2**30 bytes) — the paper's disk sizes are multiples of this.
GiB: int = 1024 * MiB
#: One tebibyte (2**40 bytes).
TiB: int = 1024 * GiB

_UNIT_FACTORS = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": TiB,
    "tb": TiB,
    "tib": TiB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_size(text: "str | int | float") -> int:
    """Parse a human size (``"64MiB"``, ``"1.5GiB"``, ``4096``) into bytes.

    Integers and floats pass through (floats must be integral byte counts).
    Unit suffixes are case-insensitive; bare ``K``/``M``/``G``/``T`` are
    binary (powers of 1024), matching the paper's KiB/MiB/GiB usage.

    Raises:
        ConfigurationError: on unknown units, negative values, or
            non-integral byte counts.
    """
    if isinstance(text, bool):  # bool is an int subclass; reject explicitly
        raise ConfigurationError("size must be a number or string, not bool")
    if isinstance(text, int):
        if text < 0:
            raise ConfigurationError(f"size must be non-negative, got {text}")
        return text
    if isinstance(text, float):
        if text < 0 or text != int(text):
            raise ConfigurationError(
                f"float size must be a non-negative integer byte count, got {text}"
            )
        return int(text)
    match = _SIZE_RE.match(str(text))
    if match is None:
        raise ConfigurationError(f"cannot parse size {text!r}")
    value = float(match.group(1))
    unit = match.group(2).lower()
    if unit not in _UNIT_FACTORS:
        raise ConfigurationError(f"unknown size unit {match.group(2)!r} in {text!r}")
    total = value * _UNIT_FACTORS[unit]
    if total != int(total):
        raise ConfigurationError(f"size {text!r} is not a whole number of bytes")
    return int(total)


def format_bytes(num_bytes: "int | float", precision: int = 2) -> str:
    """Render a byte count with the largest binary unit that keeps value >= 1.

    >>> format_bytes(64 * MiB)
    '64.00 MiB'
    """
    if num_bytes < 0:
        return "-" + format_bytes(-num_bytes, precision)
    for unit, factor in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if num_bytes >= factor:
            return f"{num_bytes / factor:.{precision}f} {unit}"
    return f"{int(num_bytes)} B"


def format_duration(seconds: float, precision: int = 2) -> str:
    """Render a duration in the most natural unit (us/ms/s/min/h)."""
    if seconds < 0:
        return "-" + format_duration(-seconds, precision)
    if seconds == 0:
        return "0 s"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.{precision}f} us"
    if seconds < 1:
        return f"{seconds * 1e3:.{precision}f} ms"
    if seconds < 120:
        return f"{seconds:.{precision}f} s"
    if seconds < 7200:
        return f"{seconds / 60:.{precision}f} min"
    return f"{seconds / 3600:.{precision}f} h"
