"""Parameter-validation helpers raising :class:`ConfigurationError`.

Centralised so every config dataclass produces uniform, actionable error
messages (the quantity name is always included).
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Tuple, Type, Union

from repro.errors import ConfigurationError


def check_type(name: str, value: Any, types: Union[Type, Tuple[Type, ...]]) -> Any:
    """Ensure ``value`` is an instance of ``types`` (bool never counts as int)."""
    if isinstance(value, bool) and (types is int or (isinstance(types, tuple) and int in types and bool not in types)):
        raise ConfigurationError(f"{name} must be {types}, got bool {value!r}")
    if not isinstance(value, types):
        raise ConfigurationError(f"{name} must be {types}, got {type(value).__name__} {value!r}")
    return value


def check_positive(name: str, value: Real) -> Real:
    """Ensure ``value > 0``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a positive number, got {value!r}")
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: Real) -> Real:
    """Ensure ``value >= 0``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a non-negative number, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: Real,
    low: Real,
    high: Real,
    inclusive: bool = True,
) -> Real:
    """Ensure ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ConfigurationError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_probability(name: str, value: Real) -> Real:
    """Ensure ``0 <= value <= 1``."""
    return check_in_range(name, value, 0.0, 1.0)
