"""Adaptive overload control: deadlines, CoDel-style brownout, retry budgets.

A repair daemon melts down the same way any queueing system does: offered
load exceeds disk capacity, gate queues grow without bound, every request
waits behind every earlier one, and by the time a read reaches a spindle
its client has long stopped caring. The classic failure amplifiers are all
present here — repair traffic competing with the front door (Rashmi et
al.'s warehouse study), degraded reads being the first casualty (Xie et
al.), and client retries multiplying offered load exactly when capacity is
scarcest. This module is the service plane's answer, three mechanisms that
compose:

* **Deadlines** (:class:`Deadline`). Every request may carry a
  ``deadline_ms`` budget on the wire. The daemon stamps an absolute
  expiry at arrival and re-checks it at each queue hop — admission, gate
  wait, piggyback wait — so *doomed* work is shed before it consumes a
  disk slot, not after. An expired request costs a queue entry, never a
  seek.

* **The controller** (:class:`OverloadController`). A CoDel-flavored
  state machine over per-disk gate-wait observations. Like CoDel it keys
  on the *minimum* wait seen in a sliding interval — a burst that clears
  within one interval never trips it, a standing queue (where even the
  luckiest read waited too long) does. Sustained waits above ``target``
  brown the daemon out (repair reads are paced down); waits above
  ``shed_target`` escalate to shedding (degraded reads are refused with a
  retryable ``overload`` + ``retry_after_ms`` hint; plain reads only once
  a disk's queue passes ``queue_cap``). Priority is strict and inverse to
  cost: repair rounds are paced before any client work is refused, and
  expensive degraded decodes are refused before cheap healthy reads.

* **Retry budgets** (:class:`RetryBudget`). Client-side token buckets
  (one per endpoint) under the existing backoff/breaker stack: each
  first attempt earns a fraction of a token, each retry spends one. When
  the bucket runs dry the client surfaces the error instead of retrying,
  so a browned-out daemon sees offered load amplified by at most
  ``1 + ratio`` instead of a retry storm.

State machine (exported as ``hdpsr_service_overload_state`` 0/1/2 and in
the ``stats`` verb's ``overload`` section)::

              min wait > target                min wait > shed_target
    healthy ───────────────────▶ browned_out ─────────────────────▶ shedding
       ▲                            │   ▲                              │
       └────── recovery_intervals ──┘   └────── recovery_intervals ────┘
               clean windows                    clean windows

Everything is clock-injected and seeded where it randomizes, so the chaos
harness replays the same brownout episode every run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError, DeadlineExceededError, OverloadError
from repro.obs.context import current_registry

#: Work classes, cheapest-to-shed first. ``scrub`` is the cheapest of
#: all — pure background verification with no caller waiting — so it is
#: paced down the moment the daemon leaves ``healthy`` and parked
#: entirely while shedding; ``repair`` is never refused — the rebuild
#: must finish — only paced; ``degraded`` (k-survivor decode or
#: piggyback wait) is refused before ``read`` (healthy chunk).
CLASS_SCRUB = "scrub"
CLASS_REPAIR = "repair"
CLASS_DEGRADED = "degraded"
CLASS_READ = "read"

#: Daemon overload states, in escalation order.
STATE_HEALTHY = "healthy"
STATE_BROWNED_OUT = "browned_out"
STATE_SHEDDING = "shedding"
_STATE_LEVEL = {STATE_HEALTHY: 0, STATE_BROWNED_OUT: 1, STATE_SHEDDING: 2}

#: Gauge: the daemon's overload state (0 healthy / 1 browned-out / 2 shedding).
OVERLOAD_STATE = "hdpsr_service_overload_state"
#: Counter: requests refused by the controller, by work class.
SHEDS = "hdpsr_service_sheds_total"
#: Counter: requests shed because their deadline had already expired, by hop.
DEADLINE_EXPIRED = "hdpsr_service_deadline_expired_total"
#: Counter: repair reads delayed by brownout pacing.
REPAIR_PACED = "hdpsr_service_repair_paced_total"
#: Counter: scrub verifies delayed (browned-out) or parked (shedding).
SCRUB_PACED = "hdpsr_service_scrub_paced_total"
#: Counter: state transitions, labelled from/to.
TRANSITIONS = "hdpsr_service_overload_transitions_total"


class Deadline:
    """An absolute expiry carried through every queue hop of one request.

    Args:
        expires_at: absolute expiry on ``clock``'s timeline.
        clock: monotonic time source (injectable for tests).
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self, expires_at: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.expires_at = expires_at
        self._clock = clock

    @classmethod
    def from_budget_ms(
        cls,
        budget_ms: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        if budget_ms < 0:
            raise ConfigurationError(
                f"deadline budget must be >= 0 ms, got {budget_ms}"
            )
        return cls(clock() + budget_ms / 1000.0, clock=clock)

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, hop: str) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent.

        ``hop`` names the queue stage that found the corpse (``admission``,
        ``gate``, ``piggyback``) — it travels into the error reply and the
        ``hdpsr_service_deadline_expired_total`` counter, so an operator
        can see *where* doomed work is being caught.
        """
        remaining = self.remaining()
        if remaining <= 0.0:
            current_registry().counter(
                DEADLINE_EXPIRED,
                "requests shed because their deadline expired, by hop",
            ).labels(hop=hop).inc()
            raise DeadlineExceededError(
                f"deadline exceeded at {hop} ({-remaining * 1e3:.1f} ms past)",
                hop=hop, overshoot_seconds=-remaining,
            )


@dataclass(frozen=True)
class OverloadConfig:
    """Tuning knobs of one :class:`OverloadController`.

    Attributes:
        target_ms: acceptable per-disk gate wait; a sliding interval whose
            *minimum* wait exceeds this marks a standing queue (CoDel's
            persistence test) and browns the daemon out.
        shed_target_ms: minimum-wait level that escalates brownout to
            shedding.
        interval_ms: width of the sliding observation window.
        recovery_intervals: consecutive clean windows (min wait back under
            ``target_ms``) needed to de-escalate one level.
        idle_reset_s: a disk with no observations for this long is
            forgotten (its queue is empty by definition).
        repair_pace_ms: pause injected before each repair read while
            browned out; doubled while shedding.
        queue_cap: per-disk waiting-reader count beyond which even plain
            reads are refused while shedding (the hard backstop that
            bounds queue length, and therefore wait time, outright).
        retry_after_floor_ms: lower bound on the ``retry_after_ms`` hint.
        scrub_brownout_factor: how much the scrub plane stretches its
            inter-verify pause while the daemon is browned out (shedding
            parks scrub outright, so no factor applies there).
    """

    target_ms: float = 5.0
    shed_target_ms: float = 50.0
    interval_ms: float = 100.0
    recovery_intervals: int = 2
    idle_reset_s: float = 2.0
    repair_pace_ms: float = 20.0
    queue_cap: int = 64
    retry_after_floor_ms: float = 25.0
    scrub_brownout_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.target_ms <= 0 or self.shed_target_ms < self.target_ms:
            raise ConfigurationError(
                f"need 0 < target_ms <= shed_target_ms, got "
                f"{self.target_ms}/{self.shed_target_ms}"
            )
        if self.interval_ms <= 0:
            raise ConfigurationError(
                f"interval_ms must be > 0, got {self.interval_ms}"
            )
        if self.recovery_intervals < 1:
            raise ConfigurationError(
                f"recovery_intervals must be >= 1, got {self.recovery_intervals}"
            )
        if self.scrub_brownout_factor < 1.0:
            raise ConfigurationError(
                f"scrub_brownout_factor must be >= 1, got "
                f"{self.scrub_brownout_factor}"
            )


class _DiskWindow:
    """One disk's sliding CoDel window: min wait per interval, state level."""

    __slots__ = ("window_start", "min_wait", "level", "clean_windows", "last_seen")

    def __init__(self, now: float) -> None:
        self.window_start = now
        self.min_wait: Optional[float] = None
        self.level = 0
        self.clean_windows = 0
        self.last_seen = now


class OverloadController:
    """CoDel-style brownout controller over per-disk gate waits.

    One instance per :class:`~repro.service.service.RepairService`. The
    gate reports every admission wait via :meth:`observe_wait`; the front
    door asks :meth:`admit` before queueing client work; the repair path
    asks :meth:`repair_pause` before each survivor read. The daemon-wide
    :attr:`state` is the worst per-disk level, so one melting spindle is
    enough to brown the daemon out — which is correct: that spindle's
    queue is where the SLO dies.
    """

    def __init__(
        self,
        config: Optional[OverloadConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or OverloadConfig()
        self._clock = clock
        self._disks: Dict[int, _DiskWindow] = {}
        self._last_min_wait = 0.0
        # --- tallies (also exported as metrics; kept here for `stats`) ---
        self.sheds: Dict[str, int] = {}
        self.deadline_expired = 0
        self.repair_paced = 0
        self.scrub_paced = 0
        self.transitions = 0
        self._rate_window_start = 0.0
        self._rate_count = 0
        self._rate_last = 0.0

    # -------------------------------------------------------------- state
    @property
    def state(self) -> str:
        """The daemon-wide overload state (worst disk wins)."""
        self._expire_idle()
        level = max((w.level for w in self._disks.values()), default=0)
        return [STATE_HEALTHY, STATE_BROWNED_OUT, STATE_SHEDDING][level]

    def _expire_idle(self) -> None:
        now = self._clock()
        stale = [
            d for d, w in self._disks.items()
            if now - w.last_seen > self.config.idle_reset_s
        ]
        for d in stale:
            if self._disks[d].level:
                self._note_transition()
            del self._disks[d]

    def _note_transition(self) -> None:
        self.transitions += 1
        current_registry().counter(
            TRANSITIONS, "overload state transitions"
        ).inc()

    def _export_state(self) -> None:
        current_registry().gauge(
            OVERLOAD_STATE,
            "daemon overload state (0 healthy, 1 browned-out, 2 shedding)",
        ).set(_STATE_LEVEL[self.state])

    # ------------------------------------------------------------- inputs
    def observe_wait(self, disk_id: int, waited_seconds: float) -> None:
        """Feed one gate-admission wait into ``disk_id``'s window."""
        c = self.config
        now = self._clock()
        win = self._disks.get(disk_id)
        if win is None:
            win = self._disks[disk_id] = _DiskWindow(now)
        win.last_seen = now
        if win.min_wait is None or waited_seconds < win.min_wait:
            win.min_wait = waited_seconds
        if now - win.window_start < c.interval_ms / 1000.0:
            return
        # Window rollover: judge the interval by its *minimum* wait.
        min_wait = win.min_wait if win.min_wait is not None else 0.0
        self._last_min_wait = max(self._last_min_wait, min_wait)
        before = win.level
        if min_wait > c.shed_target_ms / 1000.0:
            win.level = 2
            win.clean_windows = 0
        elif min_wait > c.target_ms / 1000.0:
            win.level = max(win.level, 1)
            win.clean_windows = 0
        else:
            win.clean_windows += 1
            if win.clean_windows >= c.recovery_intervals and win.level:
                win.level -= 1
                win.clean_windows = 0
            if win.level == 0:
                self._last_min_wait = 0.0
        if win.level != before:
            self._note_transition()
        win.window_start = now
        win.min_wait = None
        self._export_state()

    # ----------------------------------------------------------- verdicts
    def retry_after_ms(self) -> float:
        """The backoff hint attached to ``overload`` refusals: long enough
        for the standing queue the controller measured to drain once."""
        hint = max(
            self.config.retry_after_floor_ms,
            2.0 * self._last_min_wait * 1000.0,
            self.config.interval_ms,
        )
        return round(hint, 3)

    def _shed(self, work_class: str, reason: str) -> None:
        self.sheds[work_class] = self.sheds.get(work_class, 0) + 1
        now = self._clock()
        if now - self._rate_window_start >= 1.0:
            self._rate_last = self._rate_count / max(
                1e-9, now - self._rate_window_start
            ) if self._rate_window_start else 0.0
            self._rate_window_start = now
            self._rate_count = 0
        self._rate_count += 1
        current_registry().counter(
            SHEDS, "requests refused by the overload controller, by class"
        ).labels(work_class=work_class).inc()
        raise OverloadError(
            f"{work_class} read shed ({reason})",
            work_class=work_class,
            retry_after_ms=self.retry_after_ms(),
        )

    def admit(self, work_class: str, queue_depth: int = 0) -> None:
        """Gatekeep one piece of client work; raises :class:`OverloadError`
        when the current state sheds its class.

        ``queue_depth`` is the target disk's waiting-reader count; plain
        reads are only refused once it passes ``queue_cap`` (the backstop
        that keeps even the protected class's queue — and hence its wait —
        bounded while shedding).
        """
        state = self.state
        if state != STATE_SHEDDING:
            return
        if work_class == CLASS_SCRUB:
            self._shed(work_class, "shedding: scrub parked")
        if work_class == CLASS_DEGRADED:
            self._shed(work_class, "shedding: degraded decodes refused")
        if work_class == CLASS_READ and queue_depth >= self.config.queue_cap:
            self._shed(
                work_class,
                f"shedding: disk queue at cap ({queue_depth})",
            )

    def repair_pause(self) -> float:
        """Seconds the repair path must pause before its next survivor
        read (0 while healthy; doubled while shedding)."""
        state = self.state
        if state == STATE_HEALTHY:
            return 0.0
        pause = self.config.repair_pace_ms / 1000.0
        if state == STATE_SHEDDING:
            pause *= 2.0
        self.repair_paced += 1
        current_registry().counter(
            REPAIR_PACED, "repair reads delayed by brownout pacing"
        ).inc()
        return pause

    def scrub_throttle(self) -> Optional[float]:
        """Pace multiplier for the scrub plane's inter-verify pause.

        Returns ``1.0`` while healthy, ``scrub_brownout_factor`` while
        browned out (scrub slows but keeps making progress), and ``None``
        while shedding — the scrubber must park entirely and poll again
        later; background verification is the first work to stop when a
        spindle is melting. Non-1.0 outcomes tally ``scrub_paced``.
        """
        state = self.state
        if state == STATE_HEALTHY:
            return 1.0
        self.scrub_paced += 1
        current_registry().counter(
            SCRUB_PACED, "scrub verifies delayed or parked by brownout"
        ).inc()
        if state == STATE_SHEDDING:
            return None
        return self.config.scrub_brownout_factor

    def note_deadline_expired(self) -> None:
        """Tally one deadline shed (the metric itself is counted by
        :meth:`Deadline.check`; this keeps the ``stats`` mirror)."""
        self.deadline_expired += 1

    # ------------------------------------------------------------ scraping
    def sheds_per_second(self) -> float:
        """Recent shed rate (last completed ~1 s window)."""
        now = self._clock()
        if not self._rate_window_start:
            return 0.0
        elapsed = now - self._rate_window_start
        if elapsed >= 2.0:
            return 0.0  # window stale: nothing shed recently
        if elapsed >= 1.0:
            return self._rate_count / elapsed
        return self._rate_last or (self._rate_count / max(elapsed, 1e-3))

    def snapshot(self) -> dict:
        """The ``overload`` section of the daemon's ``stats`` snapshot."""
        self._export_state()
        return {
            "state": self.state,
            "sheds": dict(self.sheds),
            "sheds_total": sum(self.sheds.values()),
            "sheds_per_s": round(self.sheds_per_second(), 3),
            "deadline_expired": self.deadline_expired,
            "repair_paced": self.repair_paced,
            "scrub_paced": self.scrub_paced,
            "transitions": self.transitions,
            "retry_after_ms": self.retry_after_ms(),
            "browned_disks": sorted(
                d for d, w in self._disks.items() if w.level
            ),
        }


class RetryBudget:
    """Token bucket bounding a client's retry amplification per endpoint.

    Each first attempt deposits ``ratio`` tokens (capped at ``cap``); each
    retry withdraws one. When the bucket is empty :meth:`allow_retry`
    refuses, the caller surfaces the error, and offered load during a
    brownout is amplified by at most ``1 + ratio`` instead of the retry
    ladder's full depth. The gRPC-style throttle, clock-free and exact.

    Args:
        ratio: tokens earned per first attempt.
        cap: bucket capacity (also the initial balance, so short bursts
            of failures right after startup can still retry).
    """

    def __init__(self, ratio: float = 0.1, cap: float = 10.0) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ConfigurationError(f"retry ratio must be in [0, 1], got {ratio}")
        if cap < 1.0:
            raise ConfigurationError(f"retry budget cap must be >= 1, got {cap}")
        self.ratio = ratio
        self.cap = cap
        self.tokens = cap
        self.exhausted_count = 0

    def on_request(self) -> None:
        """A first (non-retry) attempt was issued: earn ``ratio`` tokens."""
        self.tokens = min(self.cap, self.tokens + self.ratio)

    def allow_retry(self) -> bool:
        """Spend one token for a retry; False (and tallies) when dry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        self.exhausted_count += 1
        current_registry().counter(
            "hdpsr_client_retry_budget_exhausted_total",
            "retries refused because the endpoint's token bucket ran dry",
        ).inc()
        return False
