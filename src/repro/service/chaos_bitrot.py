"""Silent-corruption chaos: bitrot seeded mid-repair, caught by the scrub plane.

This is the scenario behind ``hdpsr chaos --scenario bitrot``, and the
proof the scrub plane exists to earn. One :class:`ServiceDaemon` (driven
in-process through
:meth:`~repro.service.netserver.ServiceDaemon.handle_request`) fronts a
*file-backed* sharded store — corruption has to land on real bytes with
real CRC32C sidecars — while a disk repair runs. The episode:

1. Fail one disk and submit its repair.
2. Mid-repair, fire one corruption event of each kind (``bitrot``,
   ``torn_write``, ``misdirected_write``) through the request-ordinal
   wire injector, each against a chunk of a stripe the repair never
   touches (so nothing but a verify can catch it). Seed times are
   stamped so detection latency is measurable.
3. Read one corrupted chunk through the front door immediately: the
   daemon must quarantine it and serve the *decoded* bytes — the reply
   is byte-identical to the original payload, never the rotted bytes.
4. Let the scrubber finish one full cycle after seeding and assert every
   corrupt chunk was detected, quarantined, and read-repaired
   byte-identically with a fresh sidecar (``verify_chunk`` passes).
5. Brown the daemon out (synthetic flash-crowd gate waits walk the
   controller to ``shedding``) and assert the scrubber parks — zero
   verifies while shed — then recovers and makes progress again once
   the controller walks back to ``healthy``.
6. Full byte-identity sweep: every object, including the repaired
   disk's chunks on spares, reads back exactly as written.

With ``scrub=False`` (the ``--no-scrub`` negative control) the same
corruption is seeded and nothing ever verifies the victims: the episode
ends with the corruption still latent on disk, which is what proves the
detection above is the scrub plane's doing. The control asserts only
integrity of untouched stripes; the *caller* asserts
``report["latent_corruptions"] >= 1``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core import ALGORITHMS
from repro.ec.stripe import ChunkId
from repro.errors import ChunkChecksumError, ConfigurationError
from repro.faults.service import ServiceFaultInjector
from repro.faults.spec import CORRUPTION_FAULT_KINDS, FaultEvent, FaultSchedule
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.hdss.store import ShardedChunkStore
from repro.obs.context import current_registry
from repro.service.netserver import ServiceDaemon
from repro.service.overload import STATE_HEALTHY, STATE_SHEDDING, OverloadConfig
from repro.service.scrub import ScrubConfig, Scrubber
from repro.service.service import RepairService, ServiceConfig

__all__ = ["BitrotChaosConfig", "BitrotChaosScenario", "run_bitrot_chaos"]


@dataclass(frozen=True)
class BitrotChaosConfig:
    """Knobs of one silent-corruption episode.

    Attributes:
        scrub: run the scrub plane (the treatment) or leave the seeded
            corruption to fester (the ``--no-scrub`` negative control).
        root: scratch directory — REQUIRED, the store must be file-backed
            for corruption to have bytes to rot.
        corruptions: victim count; kinds cycle through
            :data:`~repro.faults.spec.CORRUPTION_FAULT_KINDS`.
        scrub_interval_ms: inter-verify pause of the scrubber under test.
        detection_cycles: full scrub cycles allowed between seeding and
            every victim being detected + repaired (1 = "within one
            cycle"; the budget waits for that many *complete* cycles
            that started after seeding).
    """

    root: "str | Path" = ""
    scrub: bool = True
    num_disks: int = 12
    n: int = 5
    k: int = 3
    chunk_size: int = 1024
    memory_chunks: int = 16
    spares: int = 3
    seed: int = 23
    stripes: int = 10
    failed_disk: int = 3
    algorithm: str = "hd-psr-ap"
    num_shards: int = 4
    gate_width: int = 2
    corruptions: int = 3
    scrub_interval_ms: float = 1.0
    detection_cycles: int = 1
    deadline: float = 60.0

    def __post_init__(self) -> None:
        if not str(self.root):
            raise ConfigurationError(
                "bitrot chaos needs a scratch root (file-backed store)"
            )
        if self.corruptions < 1:
            raise ConfigurationError(
                f"corruptions must be >= 1, got {self.corruptions}"
            )
        if self.detection_cycles < 1:
            raise ConfigurationError(
                f"detection_cycles must be >= 1, got {self.detection_cycles}"
            )


class BitrotChaosScenario:
    """One seeded silent-corruption episode; :meth:`run` returns the report."""

    def __init__(self, config: BitrotChaosConfig) -> None:
        self.config = config
        self.failures: List[str] = []

    def _fail(self, message: str) -> None:
        self.failures.append(message)

    # ------------------------------------------------------------- assembly
    def _build(self):
        c = self.config
        root = Path(c.root)
        store = ShardedChunkStore.from_root(
            root / "store", num_shards=c.num_shards, durable=False
        )
        server = HighDensityStorageServer(
            HDSSConfig(
                num_disks=c.num_disks, n=c.n, k=c.k, chunk_size=c.chunk_size,
                memory_chunks=c.memory_chunks, spares=c.spares, seed=c.seed,
                placement="rotating",
            ),
            store=store,
        )
        server.provision_stripes(c.stripes, with_data=True)
        service = RepairService(
            server,
            ALGORITHMS[c.algorithm](),
            ServiceConfig(
                max_concurrent_stripes=2,
                per_disk_reads=c.gate_width,
                journal_root=root / "journal",
                durable_journal=False,
                overload=OverloadConfig(
                    target_ms=5.0, shed_target_ms=30.0, interval_ms=20.0,
                    recovery_intervals=1, idle_reset_s=0.4,
                    scrub_brownout_factor=4.0,
                ),
            ),
        )
        victims = self._pick_victims(server)
        schedule = FaultSchedule([
            FaultEvent(
                # Ordinals 0 and 1 are fail_disk + repair: the events land
                # on the seeding pings fired right after, i.e. mid-repair.
                at=float(2 + i),
                kind=CORRUPTION_FAULT_KINDS[i % len(CORRUPTION_FAULT_KINDS)],
                disk=disk, stripe=si, shard=s,
            )
            for i, (disk, si, s) in enumerate(victims)
        ])
        injector = ServiceFaultInjector(schedule)
        scrubber = None
        if c.scrub:
            scrubber = Scrubber(service, ScrubConfig(
                interval_ms=c.scrub_interval_ms,
                cycle_pause_s=0.05,
                park_poll_s=0.02,
                journal_root=root / "scrub-cursor",
                durable_journal=False,
                auto_repair=True,
            ))
        daemon = ServiceDaemon(service, chaos=injector, scrubber=scrubber)
        return store, server, service, daemon, scrubber, injector, victims

    def _pick_victims(
        self, server: HighDensityStorageServer
    ) -> List[Tuple[int, int, int]]:
        """``(disk, stripe, shard)`` triples the disk repair never reads:
        data shards of stripes that do not touch the failed disk, spread
        across distinct disks (and store shards where possible) so the
        corruption lands "across shards" rather than clustering."""
        c = self.config
        victims: List[Tuple[int, int, int]] = []
        used_disks: set = set()
        for si in range(len(server.layout)):
            stripe = server.layout[si]
            if c.failed_disk in stripe.disks:
                continue
            for s in range(stripe.k):
                disk = stripe.disks[s]
                if disk in used_disks:
                    continue
                victims.append((disk, si, s))
                used_disks.add(disk)
                break
            if len(victims) >= c.corruptions:
                return victims
        # Relax the distinct-disk spread if the layout is too small for it.
        for si in range(len(server.layout)):
            stripe = server.layout[si]
            if c.failed_disk in stripe.disks:
                continue
            for s in range(stripe.k):
                key = (stripe.disks[s], si, s)
                if key not in victims:
                    victims.append(key)
                if len(victims) >= c.corruptions:
                    return victims
        raise ConfigurationError(
            "not enough repair-untouched stripes to seed "
            f"{c.corruptions} corruptions"
        )

    # ------------------------------------------------------------------ run
    async def run(self) -> dict:
        c = self.config
        hard_deadline = time.monotonic() + c.deadline
        store, server, service, daemon, scrubber, injector, victims = (
            self._build()
        )
        originals = {
            si: server.read_object(si) for si in range(len(server.layout))
        }
        pristine = {
            (disk, si, s): store.get(disk, ChunkId(si, s)).tobytes()
            for disk, si, s in victims
        }
        victim_stripes = {si for _, si, _ in victims}

        report: dict = {
            "scenario": "bitrot",
            "scrub": c.scrub,
            "seed": c.seed,
            "victims": [
                {
                    "disk": d, "stripe": si, "shard": s,
                    "kind": CORRUPTION_FAULT_KINDS[i % len(CORRUPTION_FAULT_KINDS)],
                }
                for i, (d, si, s) in enumerate(victims)
            ],
        }

        if scrubber is not None:
            scrubber.start()

        # 1. Fail the disk and start its repair (ordinals 0 and 1).
        reply = await daemon.handle_request(
            {"op": "fail_disk", "disk": c.failed_disk}
        )
        if not reply.get("ok"):
            self._fail(f"fail_disk refused: {reply}")
        reply = await daemon.handle_request({"op": "repair", "disk": c.failed_disk})
        job_id = reply.get("job_id")
        if not reply.get("ok"):
            self._fail(f"repair refused: {reply}")

        # 2. Seed the corruption mid-repair: each ping advances the request
        # ordinal past one scheduled corruption event.
        cycles_at_seed = scrubber.cycles_completed if scrubber else 0
        for _ in range(c.corruptions):
            await daemon.handle_request({"op": "ping"})
        seeded_at = time.monotonic()
        report["injected"] = dict(injector.applied)
        if sum(injector.applied.get(k, 0) for k in CORRUPTION_FAULT_KINDS) != len(
            victims
        ):
            self._fail(
                f"expected {len(victims)} corruption events to fire, "
                f"applied: {injector.applied}"
            )

        # 3. The front door must never leak rotted bytes: read the first
        # victim right now, while its corruption is fresh. The daemon
        # quarantines it on the checksum mismatch and serves the decode.
        first_disk, first_si, first_s = victims[0]
        reply = await daemon.handle_request(
            {"op": "read", "stripe": first_si, "shard": first_s}
        )
        if not reply.get("ok"):
            self._fail(f"foreground read of corrupt chunk failed: {reply}")
        else:
            from repro.service.protocol import unpack_bytes

            got = unpack_bytes(reply["data_b64"])
            if got != pristine[(first_disk, first_si, first_s)]:
                self._fail(
                    "foreground read of corrupt chunk returned wrong bytes "
                    f"(s{first_si}/{first_s})"
                )
        report["foreground_read_clean"] = not any(
            "foreground read" in f for f in self.failures
        )

        # 4. The disk repair must finish clean despite the corruption.
        if job_id is not None:
            budget = max(1.0, hard_deadline - time.monotonic())
            try:
                reply = await asyncio.wait_for(
                    daemon.handle_request({"op": "wait", "job_id": job_id}),
                    timeout=budget,
                )
            except asyncio.TimeoutError:
                self._fail(f"disk repair did not finish within {budget:.0f}s")
            else:
                if not reply.get("certified", False):
                    self._fail("disk repair did not certify clean")
                report["repair"] = {
                    k: v for k, v in reply.items() if k not in ("ok", "trace_id")
                }

        if scrubber is not None:
            await self._assert_treatment(
                report, service, scrubber, victims, pristine,
                cycles_at_seed, seeded_at, hard_deadline,
            )
        else:
            self._assert_control(report, store, victims)

        # Final byte-identity sweep. The negative control skips stripes
        # holding latent corruption on purpose: reading them would detect
        # (and quarantine) the very rot whose latency it exists to prove.
        mismatched = []
        for si, want in originals.items():
            if scrubber is None and si in victim_stripes:
                continue
            try:
                got = await service.read_object(si)
            except Exception as exc:  # noqa: BLE001 - recorded as mismatch
                mismatched.append((si, repr(exc)))
                continue
            if got != want:
                mismatched.append((si, "bytes differ"))
        report["byte_identical"] = not mismatched
        if mismatched:
            self._fail(f"objects not byte-identical: {mismatched}")

        if scrubber is not None:
            await scrubber.stop()
            report["scrub_status"] = scrubber.status().to_dict()
        await service.close()
        report["corruption"] = {
            "found": service.corrupt_found,
            "repaired": service.corrupt_repaired,
            "quarantined": len(service.quarantine),
        }
        report["failures"] = list(self.failures)
        report["passed"] = not self.failures
        current_registry().counter(
            "hdpsr_chaos_runs_total", "Chaos scenarios executed.",
        ).labels(outcome="pass" if report["passed"] else "fail").inc()
        return report

    # ------------------------------------------------------------ assertions
    async def _assert_treatment(
        self,
        report: dict,
        service: RepairService,
        scrubber: Scrubber,
        victims: List[Tuple[int, int, int]],
        pristine: Dict[Tuple[int, int, int], bytes],
        cycles_at_seed: int,
        seeded_at: float,
        hard_deadline: float,
    ) -> None:
        c = self.config
        store = service.server.store

        # Detection budget: wait for `detection_cycles` cycles guaranteed
        # to have *started* after seeding (+1 covers the cycle that was
        # already in flight when the corruption landed).
        target = cycles_at_seed + c.detection_cycles + 1
        budget = max(1.0, hard_deadline - time.monotonic())
        if not await scrubber.wait_cycles(target, timeout=budget):
            self._fail(
                f"scrubber completed {scrubber.cycles_completed} cycles "
                f"(wanted {target}) within {budget:.0f}s"
            )
        report["detection_window_seconds"] = round(
            time.monotonic() - seeded_at, 3
        )

        # Every victim: detected, repaired byte-identically, sidecar fresh.
        still_bad = []
        for disk, si, s in victims:
            cid = ChunkId(si, s)
            if service.is_quarantined(disk, cid):
                still_bad.append((disk, si, s, "still quarantined"))
                continue
            try:
                store.verify_chunk(disk, cid)
            except ChunkChecksumError:
                still_bad.append((disk, si, s, "sidecar mismatch"))
                continue
            if store.get(disk, cid).tobytes() != pristine[(disk, si, s)]:
                still_bad.append((disk, si, s, "bytes differ"))
        if still_bad:
            self._fail(
                f"corrupt chunks not repaired within {c.detection_cycles} "
                f"scrub cycle(s): {still_bad}"
            )
        if service.corrupt_found < len(victims):
            self._fail(
                f"only {service.corrupt_found} corruptions detected of "
                f"{len(victims)} seeded"
            )
        if service.corrupt_repaired < len(victims):
            self._fail(
                f"only {service.corrupt_repaired} read-repairs completed of "
                f"{len(victims)} seeded"
            )
        report["detected"] = service.corrupt_found
        report["read_repaired"] = service.corrupt_repaired

        # Brownout: synthetic flash-crowd gate waits walk the controller
        # to shedding; the scrubber must park (zero verifies), then make
        # progress again once the controller recovers to healthy.
        controller = service.overload
        interval = controller.config.interval_ms / 1000.0

        healthy_start = scrubber.chunks_verified
        await asyncio.sleep(0.3)
        healthy_rate = (scrubber.chunks_verified - healthy_start) / 0.3
        report["scrub_rate_healthy_per_s"] = round(healthy_rate, 1)

        async def shed_pulse() -> None:
            controller.observe_wait(0, 0.2)
            await asyncio.sleep(interval * 1.5)
            controller.observe_wait(0, 0.2)

        await shed_pulse()
        parked_deadline = time.monotonic() + 2.0
        while not scrubber.parked and time.monotonic() < parked_deadline:
            await shed_pulse()  # keep the window hot until the park lands
        report["scrub_parked_while_shedding"] = scrubber.parked
        report["state_during_pulse"] = controller.state
        if controller.state != STATE_SHEDDING:
            self._fail(
                f"synthetic gate waits left controller {controller.state}, "
                "expected shedding"
            )
        if not scrubber.parked:
            self._fail("scrubber did not park while the daemon was shedding")
        parked_start = scrubber.chunks_verified
        hold = time.monotonic() + 0.3
        while time.monotonic() < hold:
            controller.observe_wait(0, 0.2)
            await asyncio.sleep(0.05)
        parked_verifies = scrubber.chunks_verified - parked_start
        report["verifies_while_parked"] = parked_verifies
        if parked_verifies:
            self._fail(
                f"scrubber verified {parked_verifies} chunks while parked"
            )

        # Recovery: the idle window expires, the controller walks back to
        # healthy, and the scrubber resumes verifying.
        budget = max(1.0, hard_deadline - time.monotonic())
        recover_deadline = time.monotonic() + budget
        while (
            controller.state != STATE_HEALTHY
            and time.monotonic() < recover_deadline
        ):
            await asyncio.sleep(0.05)
        report["recovered_healthy"] = controller.state == STATE_HEALTHY
        if controller.state != STATE_HEALTHY:
            self._fail(f"controller stuck in {controller.state} after the pulse")
        resume_start = scrubber.chunks_verified
        while (
            scrubber.chunks_verified == resume_start
            and time.monotonic() < recover_deadline
        ):
            await asyncio.sleep(0.02)
        report["scrub_resumed"] = scrubber.chunks_verified > resume_start
        if not report["scrub_resumed"]:
            self._fail("scrubber made no progress after the daemon recovered")

    def _assert_control(self, report: dict, store, victims) -> None:
        """Without the scrub plane, nothing verifies the victims: the
        corruption must still be latent on disk at episode end."""
        latent = 0
        for disk, si, s in victims:
            try:
                store.verify_chunk(disk, ChunkId(si, s))
            except ChunkChecksumError:
                latent += 1
        report["latent_corruptions"] = latent
        # The control's own pass/fail stays about integrity; the caller
        # asserts latent_corruptions >= 1, mirroring the overload control.


def run_bitrot_chaos(config: BitrotChaosConfig) -> dict:
    """Synchronous front door for the CLI/CI: run one bitrot episode."""
    return asyncio.run(BitrotChaosScenario(config).run())
