"""JSON-lines wire protocol between ``hdpsr serve`` and ``hdpsr client``.

One request or response per line, UTF-8 JSON, newline-terminated. Every
request carries an ``op``; every response carries ``ok`` (and ``error``
when ``ok`` is false). Chunk payloads travel base64-encoded under
``data_b64`` — small enough at the chunk sizes the service targets, and it
keeps the protocol greppable and curl-able.

Operations (client -> server):

``ping``
    Liveness + topology: stripe count, ``n``/``k``, disk counts.
``stats``
    Service counters: modeled clock, tickets, write-queue totals.
``fail_disk``
    Fail one disk (fault-injection front door for smoke tests).
``repair``
    Submit a background repair of one disk; returns a ``job_id``.
``wait``
    Block until a submitted repair finishes; returns its summary.
``read``
    Front-door read of one chunk (degrades transparently when lost).
``read_object``
    Front-door read of one whole object (k chunks, joined).
``shutdown``
    Drain and stop the daemon.
"""

from __future__ import annotations

import base64
import json
from typing import Optional

from repro.errors import ReproError

PROTOCOL_VERSION = 1

#: Upper bound on one encoded message (guards the line reader).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(ReproError):
    """Malformed or over-long wire message."""


def encode_message(msg: dict) -> bytes:
    """One JSON-lines frame for ``msg``."""
    return (json.dumps(msg, separators=(",", ":"), sort_keys=True) + "\n").encode()


def decode_message(line: bytes) -> dict:
    try:
        msg = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad wire message: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(f"wire message must be an object, got {type(msg).__name__}")
    return msg


async def read_message(reader) -> Optional[dict]:
    """Read one frame from an ``asyncio.StreamReader``; None on EOF."""
    try:
        line = await reader.readuntil(b"\n")
    except EOFError:
        return None
    except Exception as exc:  # IncompleteReadError subclasses EOFError on 3.8+
        if exc.__class__.__name__ == "IncompleteReadError":
            return None
        raise
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_MESSAGE_BYTES} bytes")
    if not line.strip():
        return None
    return decode_message(line)


def ok(**fields) -> dict:
    out = {"ok": True}
    out.update(fields)
    return out


def error(message: str, **fields) -> dict:
    out = {"ok": False, "error": str(message)}
    out.update(fields)
    return out


def pack_bytes(data: bytes) -> str:
    return base64.b64encode(bytes(data)).decode("ascii")


def unpack_bytes(encoded: str) -> bytes:
    try:
        return base64.b64decode(encoded.encode("ascii"), validate=True)
    except Exception as exc:
        raise ProtocolError(f"bad base64 payload: {exc}") from None
