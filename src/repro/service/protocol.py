"""JSON-lines wire protocol between ``hdpsr serve`` and ``hdpsr client``.

One request or response per line, UTF-8 JSON, newline-terminated. Every
request carries an ``op``; every response carries ``ok`` (and ``error``
when ``ok`` is false). Chunk payloads travel base64-encoded under
``data_b64`` — small enough at the chunk sizes the service targets, and it
keeps the protocol greppable and curl-able.

Requests may carry a ``trace`` object (``{"trace_id", "span_id"}``, see
:class:`~repro.obs.tracer.SpanContext`): the daemon re-installs it so the
spans of everything the request touches — admission gate waits, survivor
reads, decodes, piggybacks — export as one connected tree, and echoes
``trace_id`` in the response for correlation.

Operations (client -> server):

``ping``
    Liveness + topology: stripe count, ``n``/``k``, disk counts.
``stats``
    Live telemetry snapshot: per-job repair progress with ETAs, per-disk
    gate depths, writer backlog, event-loop health, foreground latency
    percentiles (see :mod:`repro.service.telemetry`).
``metrics``
    The metrics registry rendered as Prometheus text exposition
    (the TCP twin of the HTTP ``/metrics`` listener).
``fail_disk``
    Fail one disk (fault-injection front door for smoke tests).
``repair``
    Submit a background repair of one disk; returns a ``job_id``.
``wait``
    Block until a submitted repair finishes; returns its summary.
``read``
    Front-door read of one chunk (degrades transparently when lost).
``read_object``
    Front-door read of one whole object (k chunks, joined).
``shutdown``
    Drain and stop the daemon.

**Robustness.** Malformed input never kills a connection task silently:
non-JSON lines and non-object payloads raise a recoverable
:class:`ProtocolError` the daemon answers with a structured error
response; frames longer than the reader's cap (requests are bounded by
:data:`MAX_REQUEST_BYTES` server-side) raise a *fatal* one — the daemon
answers, then closes, because a byte stream that overran its framing
cannot be resynchronized.

**Error taxonomy (v4).** Every error response carries a ``code`` from
:data:`ERROR_CODES` and a ``retryable`` boolean, so clients stop guessing
from message text. ``crash`` (daemon died mid-request) and ``overload``
(admission cap hit *or* brownout shedding) are retryable — elsewhere or
later; ``overload`` responses may carry a ``retry_after_ms`` hint that
well-behaved clients honor as a backoff floor. ``not_owner`` is
retryable *after redirect* and carries ``owner``/``endpoint``/``epoch``/
``shard`` so the client can go straight to the owning daemon; ``fenced``,
``bad_request``, ``protocol``, ``not_found`` and ``internal`` are fatal
for that request. Cluster deployments add a ``cluster`` op returning the
node's lease/ownership snapshot.

**Deadlines (v4).** ``read``/``read_object`` requests may carry
``deadline_ms`` — a per-request latency budget in milliseconds, measured
from daemon admission. The daemon stamps an absolute expiry on arrival
and re-checks it at every queue hop (admission, gate wait, piggyback
wait); once expired, the request is answered with the non-retryable
``deadline_exceeded`` code instead of consuming a disk slot — the client
has already given up, so doing the work would be pure queue pollution.

**Silent corruption (v5).** A chunk whose bytes disagree with their
CRC32C sidecar — or one the scrub plane has already quarantined — is
answered with the ``corrupt_chunk`` code carrying ``disk``/``stripe``/
``shard``. The code is *retryable*: quarantine immediately triggers a
single-chunk read-repair through the decode path, so a retry lands after
the verified replacement (or degrades through decode meanwhile). The
daemon never serves bytes that failed a verify. Scrub deployments add a
``scrub`` op returning the scrubber's live cursor/progress snapshot.
"""

from __future__ import annotations

import asyncio
import base64
import json
from typing import Optional

from repro.errors import ReproError

PROTOCOL_VERSION = 5

#: Upper bound on one encoded message (guards the line reader).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Upper bound on one *request* frame: requests are tiny control messages,
#: so the daemon caps them far below the response bound.
MAX_REQUEST_BYTES = 1 * 1024 * 1024

# ---------------------------------------------------------------- error codes
#: The daemon crashed (or the connection died) serving the request. The
#: request may retry on a peer — repairs are journaled and chunk writes
#: idempotent, so a duplicate attempt cannot double-apply.
ERR_CRASH = "crash"
#: Admission control rejected the request (too many in flight). Back off
#: and retry the same daemon.
ERR_OVERLOAD = "overload"
#: The addressed daemon does not own the target shard; the response
#: carries ``owner``/``endpoint``/``epoch``/``shard`` to redirect to.
ERR_NOT_OWNER = "not_owner"
#: The daemon lost its lease mid-operation (epoch fencing). Not retryable
#: *here*; the new owner has or will finish the work.
ERR_FENCED = "fenced"
#: The request itself is malformed (unknown op, bad types, bad base64).
ERR_BAD_REQUEST = "bad_request"
#: Wire-level framing violation (see :class:`ProtocolError`).
ERR_PROTOCOL = "protocol"
#: The named entity (job, disk, chunk) does not exist.
ERR_NOT_FOUND = "not_found"
#: Anything else — a server-side bug surfaced as a structured error.
ERR_INTERNAL = "internal"
#: The request's ``deadline_ms`` budget expired before the daemon could
#: serve it. Not retryable: the caller has already given up on this
#: attempt, and blind retries of expired work are how brownouts become
#: outages. Responses carry ``hop`` (where it expired) and
#: ``overshoot_ms``.
ERR_DEADLINE = "deadline_exceeded"
#: The addressed chunk failed its CRC32C verify (or is quarantined while
#: its read-repair is in flight). Retryable: detection quarantines the
#: chunk and synthesizes a single-chunk repair, so a later attempt reads
#: the verified replacement. Responses carry ``disk``/``stripe``/``shard``.
ERR_CORRUPT = "corrupt_chunk"

#: All error codes a v5 daemon may emit.
ERROR_CODES = (
    ERR_CRASH, ERR_OVERLOAD, ERR_NOT_OWNER, ERR_FENCED,
    ERR_BAD_REQUEST, ERR_PROTOCOL, ERR_NOT_FOUND, ERR_INTERNAL,
    ERR_DEADLINE, ERR_CORRUPT,
)

#: Codes a client may transparently retry (``not_owner`` retries *at the
#: redirect target*, not the daemon that answered; ``corrupt_chunk``
#: retries after the quarantine-triggered read-repair replaces the bytes).
RETRYABLE_CODES = frozenset({ERR_CRASH, ERR_OVERLOAD, ERR_NOT_OWNER, ERR_CORRUPT})


def is_retryable(code: str) -> bool:
    """Whether a client may retry a request that failed with ``code``."""
    return code in RETRYABLE_CODES


class ProtocolError(ReproError):
    """Malformed or over-long wire message.

    ``fatal`` marks errors after which the byte stream cannot be trusted
    (an unterminated over-long frame): respond once, then hang up.
    """

    def __init__(self, message: str, fatal: bool = False) -> None:
        super().__init__(message)
        self.fatal = fatal


def encode_message(msg: dict) -> bytes:
    """One JSON-lines frame for ``msg``."""
    return (json.dumps(msg, separators=(",", ":"), sort_keys=True) + "\n").encode()


def decode_message(line: bytes) -> dict:
    try:
        msg = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad wire message: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(f"wire message must be an object, got {type(msg).__name__}")
    return msg


async def read_message(
    reader, max_bytes: int = MAX_MESSAGE_BYTES
) -> Optional[dict]:
    """Read one frame from an ``asyncio.StreamReader``; None on EOF.

    Raises :class:`ProtocolError` for malformed frames; the error is
    ``fatal`` when the stream overran its limit without a newline (the
    reader can no longer find a frame boundary) or a complete frame
    exceeded ``max_bytes``.
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(
            f"frame overran the stream limit ({exc.consumed} bytes buffered "
            "with no newline)", fatal=True,
        ) from None
    except EOFError:
        return None
    if len(line) > max_bytes:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {max_bytes}-byte cap",
            fatal=True,
        )
    if not line.strip():
        return None
    return decode_message(line)


def ok(**fields) -> dict:
    out = {"ok": True}
    out.update(fields)
    return out


def error(message: str, code: str = ERR_INTERNAL, **fields) -> dict:
    """A structured error response.

    ``code`` defaults to :data:`ERR_INTERNAL`; ``retryable`` is derived
    from the code unless explicitly overridden. Legacy ``crashed=True``
    callers are normalized onto :data:`ERR_CRASH`.
    """
    if fields.pop("crashed", False):
        code = ERR_CRASH
    out = {
        "ok": False,
        "error": str(message),
        "code": code,
        "retryable": fields.pop("retryable", is_retryable(code)),
    }
    if code == ERR_CRASH:
        out["crashed"] = True  # kept for pre-v3 clients
    out.update(fields)
    return out


def pack_bytes(data: bytes) -> str:
    return base64.b64encode(bytes(data)).decode("ascii")


def unpack_bytes(encoded: str) -> bytes:
    try:
        return base64.b64decode(encoded.encode("ascii"), validate=True)
    except Exception as exc:
        raise ProtocolError(f"bad base64 payload: {exc}") from None
