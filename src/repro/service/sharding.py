"""Bounded, batching async writes in front of the sharded chunk store.

Rebuilt chunks come off decode tasks one at a time, but the store is
fastest when each shard receives contiguous batches (one thread-hop and
one directory's worth of filesystem traffic per batch). The
:class:`AsyncShardWriter` puts a bounded ``asyncio.Queue`` in front of
every shard and drains each queue with its own task that coalesces up to
``batch_size`` chunks into one :meth:`ChunkStore.put_many` call executed
off the event loop.

Backpressure is the queue bound: a repair that rebuilds faster than a
shard can persist blocks in :meth:`put` instead of growing memory without
limit. Queue depth and per-shard write volume are exported as metrics so
the service dashboard shows which shard is the write bottleneck.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ec.stripe import ChunkId
from repro.errors import ConfigurationError, StorageError
from repro.hdss.store import ChunkStore, ShardedChunkStore
from repro.obs.context import current_registry, current_tracer

QUEUE_DEPTH = "hdpsr_service_queue_depth"
SHARD_CHUNKS = "hdpsr_service_shard_chunks_written_total"
SHARD_BYTES = "hdpsr_service_shard_bytes_written_total"

_Item = Tuple[int, ChunkId, np.ndarray]


class AsyncShardWriter:
    """Per-shard bounded write queues draining via batched ``put_many``.

    Works with any :class:`ChunkStore`; a :class:`ShardedChunkStore` gets
    one queue+drain task per shard (keyed by ``shard_of(disk_id)``), any
    other store gets a single queue. All writes for one disk land on one
    queue, so per-disk write order is preserved.

    Args:
        store: destination store.
        queue_depth: max chunks buffered per shard before ``put`` blocks.
        batch_size: max chunks handed to one ``put_many`` call.
    """

    def __init__(
        self, store: ChunkStore, queue_depth: int = 64, batch_size: int = 8
    ) -> None:
        if queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be >= 1, got {queue_depth}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.store = store
        self.batch_size = batch_size
        self._queue_depth = queue_depth
        self._queues: Dict[int, asyncio.Queue] = {}
        self._drains: Dict[int, asyncio.Task] = {}
        self._errors: List[BaseException] = []
        self._closed = False
        #: Chunks accepted by :meth:`put` over the writer's lifetime.
        self.chunks_enqueued = 0

    # ---------------------------------------------------------------- routing
    def _shard_of(self, disk_id: int) -> int:
        if isinstance(self.store, ShardedChunkStore):
            return self.store.shard_of(disk_id)
        return 0

    def _target(self, shard_idx: int) -> ChunkStore:
        if isinstance(self.store, ShardedChunkStore):
            return self.store.shards[shard_idx]
        return self.store

    def _queue(self, shard_idx: int) -> asyncio.Queue:
        q = self._queues.get(shard_idx)
        if q is None:
            q = self._queues[shard_idx] = asyncio.Queue(self._queue_depth)
            self._drains[shard_idx] = asyncio.get_running_loop().create_task(
                self._drain(shard_idx, q)
            )
        return q

    def _depth_gauge(self, shard_idx: int):
        return current_registry().gauge(
            QUEUE_DEPTH, "chunks buffered in a shard's write queue"
        ).labels(shard=str(shard_idx))

    # ----------------------------------------------------------------- public
    def backlog(self) -> int:
        """Chunks enqueued but not yet persisted, across all shards."""
        return sum(q.qsize() for q in self._queues.values())

    async def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        """Enqueue one chunk write; blocks when the shard queue is full."""
        if self._closed:
            raise StorageError("writer is closed")
        self._check_failed()
        shard_idx = self._shard_of(disk_id)
        q = self._queue(shard_idx)
        tracer = current_tracer()
        if tracer.enabled:
            # A span, not an instant: backpressure (a full shard queue)
            # shows up as enqueue time on the requesting trace.
            with tracer.span(
                "writeback", f"enqueue:shard-{shard_idx}", track="writer",
                shard=shard_idx, stripe=chunk_id.stripe_index,
            ):
                await q.put((disk_id, chunk_id, data))
        else:
            await q.put((disk_id, chunk_id, data))
        self.chunks_enqueued += 1
        self._depth_gauge(shard_idx).set(q.qsize())

    async def flush(self) -> None:
        """Wait until every enqueued chunk has reached the store."""
        for q in list(self._queues.values()):
            await q.join()
        self._check_failed()

    async def close(self) -> None:
        """Flush, stop the drain tasks, and refuse further writes."""
        if self._closed:
            return
        await self.flush()
        self._closed = True
        for shard_idx, q in self._queues.items():
            q.put_nowait(None)  # sentinel: drain task exits after this
        if self._drains:
            await asyncio.gather(*self._drains.values())
        self._check_failed()

    def abort(self) -> None:
        """Drop queued writes and kill the drain tasks without flushing.

        Emulates the owning process dying mid-repair (the chaos harness's
        ``daemon_crash``): chunks enqueued but not yet persisted vanish,
        exactly as a real SIGKILL would lose them — the journal, which has
        no ``stripe_done`` for them, is what brings them back elsewhere. A
        batch already handed to the store thread may still land; that too
        matches a real crash racing the page cache, and is harmless
        because re-persisting a rebuilt chunk writes identical bytes.
        """
        self._closed = True
        for task in self._drains.values():
            task.cancel()
        self._queues.clear()
        self._drains.clear()

    def _check_failed(self) -> None:
        if self._errors:
            raise StorageError(
                f"shard write failed: {self._errors[0]!r}"
            ) from self._errors[0]

    # ------------------------------------------------------------------ drain
    async def _drain(self, shard_idx: int, q: asyncio.Queue) -> None:
        target = self._target(shard_idx)
        chunks = current_registry().counter(
            SHARD_CHUNKS, "chunks persisted per shard"
        ).labels(shard=str(shard_idx))
        volume = current_registry().counter(
            SHARD_BYTES, "bytes persisted per shard"
        ).labels(shard=str(shard_idx))
        while True:
            item: Optional[_Item] = await q.get()
            if item is None:
                q.task_done()
                return
            batch: List[_Item] = [item]
            while len(batch) < self.batch_size:
                try:
                    nxt = q.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    # keep the sentinel for the outer loop to consume
                    q.task_done()
                    q.put_nowait(None)
                    break
                batch.append(nxt)
            self._depth_gauge(shard_idx).set(q.qsize())
            try:
                await asyncio.to_thread(target.put_many, batch)
                chunks.inc(len(batch))
                volume.inc(sum(int(d.size) for (_, _, d) in batch))
            except Exception as exc:  # surfaced on the next put/flush
                self._errors.append(exc)
            finally:
                for _ in batch:
                    q.task_done()
