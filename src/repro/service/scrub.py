"""The online scrub plane: continuous verification of chunks at rest.

Silent corruption — bitrot, torn writes, misdirected writes — is invisible
until something *reads* the bytes, and the worst possible moment to find
it is mid-repair, when the corrupt chunk was supposed to be a survivor.
:class:`Scrubber` closes that window: a background task that continuously
walks every disk of the service's chunk store, re-reading each chunk
against its CRC32C sidecar, quarantining anything that fails and
synthesizing a single-chunk read-repair through the service's decode path
(:meth:`~repro.service.service.RepairService.repair_chunk`).

Three properties make it a polite tenant of a loaded daemon:

* **Crash-resumable cursor.** The scrub position is journaled through
  :mod:`repro.journal` WAL records (``scrub_cycle_begin`` /
  ``scrub_disk_done`` / ``scrub_cycle_done``, one fsync'd commit per
  finished disk). A restarted daemon replays the cursor and resumes the
  interrupted cycle at the first unfinished disk — it never rescans disks
  the previous process already certified.

* **Overload-aware pacing.** Scrub is the cheapest work class of the
  brownout plane (:data:`~repro.service.overload.CLASS_SCRUB`): while the
  daemon is ``browned_out`` the inter-verify pause stretches by
  ``scrub_brownout_factor``; while ``shedding`` the scrubber parks
  entirely and polls for recovery. Every verify takes a *background* gate
  slot, so a scrub read can never hold a spindle a foreground or repair
  read is waiting on.

* **Quarantine-and-repair.** A failed verify immediately quarantines the
  chunk (it will never be served, and never used as a decode survivor),
  then decodes a replacement from k clean survivors, writes it back with
  a fresh sidecar, re-verifies the bytes on disk, and lifts the
  quarantine. Zero corrupt bytes ever cross the front door: detection by
  any path (scrub, foreground, degraded decode, repair read) happens
  *before* payload bytes escape the store.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Set

from repro.errors import (
    ChunkChecksumError,
    ChunkNotFoundError,
    ChunkQuarantinedError,
    CodingError,
    ConfigurationError,
    StorageError,
)
from repro.journal.wal import WALReader, WALRecord, WALWriter, list_segments
from repro.obs.context import current_registry, current_tracer

__all__ = ["ScrubConfig", "Scrubber", "ScrubStatus"]

#: Gauge: fraction of the current scrub cycle completed (by disk).
SCRUB_PROGRESS = "hdpsr_scrub_progress"
#: Gauge: estimated seconds until the current cycle completes.
SCRUB_ETA = "hdpsr_scrub_eta_seconds"
#: Gauge: scrubber state (0 stopped, 1 running, 2 parked by shedding).
SCRUB_STATE = "hdpsr_scrub_state"
#: Counter: chunks verified by the scrub plane.
SCRUB_VERIFIED = "hdpsr_scrub_chunks_verified_total"
#: Counter: completed scrub cycles.
SCRUB_CYCLES = "hdpsr_scrub_cycles_total"

#: Cursor-journal record types.
REC_CYCLE_BEGIN = "scrub_cycle_begin"
REC_DISK_DONE = "scrub_disk_done"
REC_CYCLE_DONE = "scrub_cycle_done"


@dataclass(frozen=True)
class ScrubConfig:
    """Tuning knobs of one :class:`Scrubber`.

    Attributes:
        interval_ms: healthy-state pause between chunk verifies — the
            scrub rate knob (0 = as fast as the gate admits). Stretched
            by the overload controller's ``scrub_brownout_factor`` while
            browned out.
        cycle_pause_s: idle pause between the end of one full cycle and
            the start of the next.
        park_poll_s: how often a parked (shedding) scrubber re-checks the
            overload state.
        journal_root: directory for the crash-resumable cursor WAL;
            ``None`` scrubs without a cursor (restart = fresh cycle).
        durable_journal: fsync cursor commits (tests turn this off).
        auto_repair: read-repair corrupt chunks as they are found; when
            False the scrubber only quarantines (detection-only mode).
    """

    interval_ms: float = 20.0
    cycle_pause_s: float = 0.5
    park_poll_s: float = 0.1
    journal_root: "str | Path | None" = None
    durable_journal: bool = True
    auto_repair: bool = True

    def __post_init__(self) -> None:
        if self.interval_ms < 0:
            raise ConfigurationError(
                f"interval_ms must be >= 0, got {self.interval_ms}"
            )
        if self.cycle_pause_s < 0:
            raise ConfigurationError(
                f"cycle_pause_s must be >= 0, got {self.cycle_pause_s}"
            )
        if self.park_poll_s <= 0:
            raise ConfigurationError(
                f"park_poll_s must be > 0, got {self.park_poll_s}"
            )


@dataclass
class ScrubStatus:
    """One JSON-safe snapshot of the scrubber (the ``scrub`` stats section)."""

    cycle: int
    cycles_completed: int
    running: bool
    parked: bool
    disks_total: int
    disks_done: int
    progress: float
    eta_seconds: Optional[float]
    chunks_verified: int
    cycle_chunks: int
    corrupt_found: int
    repaired: int
    repair_failures: int
    quarantined: int
    last_cycle_seconds: Optional[float]
    resumed_cycles: int
    interval_ms: float

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class Scrubber:
    """Background verify-everything walker over one service's chunk store.

    Args:
        service: the :class:`~repro.service.service.RepairService` whose
            store (and quarantine/read-repair machinery) to scrub.
        config: pacing + journaling knobs.
    """

    def __init__(self, service, config: Optional[ScrubConfig] = None) -> None:
        self.service = service
        self.config = config or ScrubConfig()
        #: Cycle currently in progress (or next to start), 1-based.
        self.cycle = 1
        self.cycles_completed = 0
        #: Cycles this *process* resumed from a predecessor's cursor.
        self.resumed_cycles = 0
        self.chunks_verified = 0
        self.cycle_chunks = 0
        #: Corruptions found by the scrub walk itself (the service's
        #: ``corrupt_found`` also counts foreground/degraded detections).
        self.corrupt_found = 0
        self.repaired = 0
        self.repair_failures = 0
        self.last_cycle_seconds: Optional[float] = None
        self.parked = False
        self.current_disk: Optional[int] = None
        self._done_disks: Set[int] = set()
        self._begun = False
        self._cycle_started: Optional[float] = None
        self._task: Optional[asyncio.Task] = None
        self._writer: Optional[WALWriter] = None
        if self.config.journal_root is not None:
            root = Path(self.config.journal_root)
            self._replay_cursor(root)
            self._writer = WALWriter(root, durable=self.config.durable_journal)

    # ------------------------------------------------------------- the cursor
    def _replay_cursor(self, root: Path) -> None:
        """Rebuild the scrub position from the cursor WAL.

        The journal is a flat record stream: the *last* ``cycle_begin``
        opens the cycle of record; ``disk_done`` records for that cycle
        mark disks that need no rescan; a matching ``cycle_done`` closes
        it (next run starts the following cycle fresh).
        """
        if not root.exists():
            return
        open_cycle: Optional[int] = None
        done: Set[int] = set()
        completed = 0
        for record in WALReader(root):
            if record.type == REC_CYCLE_BEGIN:
                open_cycle = int(record.meta.get("cycle", 0))
                done = set()
            elif record.type == REC_DISK_DONE:
                if open_cycle is not None and int(record.meta.get("cycle", -1)) == open_cycle:
                    done.add(int(record.meta.get("disk", -1)))
            elif record.type == REC_CYCLE_DONE:
                # A close needs no matching begin: a resumed cycle's
                # ``cycle_begin`` may live in a segment pruning dropped.
                done_cycle = int(record.meta.get("cycle", 0))
                completed = max(completed, done_cycle)
                if open_cycle is not None and done_cycle >= open_cycle:
                    open_cycle = None
                    done = set()
        if open_cycle is not None:
            # Mid-cycle crash: resume this cycle, skipping finished disks.
            self.cycle = open_cycle
            self._done_disks = done
            self._begun = True
            if done:
                self.resumed_cycles += 1
        else:
            self.cycle = completed + 1

    def _append(self, rtype: str, commit: bool = False, **meta) -> None:
        if self._writer is None:
            return
        self._writer.append(WALRecord(type=rtype, meta=meta))
        if commit:
            self._writer.commit()

    def _prune_journal(self) -> None:
        """Drop cursor segments older than the current one.

        Called right after a ``cycle_done`` commit: everything a future
        replay needs (the close of this cycle) lives in the newest
        segment, so prior segments are pure history.
        """
        if self._writer is None:
            return
        segments = list_segments(self._writer.root)
        for seg in segments[:-1]:
            seg.unlink(missing_ok=True)

    # -------------------------------------------------------------- lifecycle
    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def start(self) -> None:
        """Start the continuous scrub loop on the running event loop."""
        if self.running:
            return
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="scrubber"
        )

    async def stop(self) -> None:
        """Cancel the loop, wait it out, and close the cursor journal."""
        if self._task is not None:
            self._task.cancel()
            await asyncio.gather(self._task, return_exceptions=True)
            self._task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._export()

    async def _run(self) -> None:
        while True:
            await self.run_cycle()
            if self.config.cycle_pause_s > 0:
                await asyncio.sleep(self.config.cycle_pause_s)

    async def wait_cycles(self, n: int, timeout: float = 60.0) -> bool:
        """Block until ``n`` cycles have completed; False on timeout."""
        deadline = time.monotonic() + timeout
        while self.cycles_completed < n:
            if time.monotonic() > deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    # -------------------------------------------------------------- one cycle
    async def run_cycle(self) -> int:
        """Scrub every disk once (resuming a journaled cycle if one is
        open); returns the number of chunks verified this cycle."""
        service = self.service
        if not self._begun:
            self._done_disks = set()
            self._append(REC_CYCLE_BEGIN, commit=True, cycle=self.cycle)
            self._begun = True
        self._cycle_started = time.monotonic()
        self.cycle_chunks = 0
        disks = list(range(len(service.server.disks)))
        self._disks_total = len(disks)
        for disk_id in disks:
            if disk_id in self._done_disks:
                continue  # certified by a previous incarnation's cursor
            self.current_disk = disk_id
            if not service.server.disk(disk_id).is_failed:
                await self._scrub_disk(disk_id)
            self._done_disks.add(disk_id)
            self._append(
                REC_DISK_DONE, commit=True, cycle=self.cycle, disk=disk_id
            )
            self._export()
        elapsed = time.monotonic() - self._cycle_started
        self.last_cycle_seconds = elapsed
        self.cycles_completed += 1
        self._append(
            REC_CYCLE_DONE, commit=True,
            cycle=self.cycle, chunks=self.cycle_chunks,
            seconds=round(elapsed, 6),
        )
        self._prune_journal()
        current_registry().counter(
            SCRUB_CYCLES, "completed scrub cycles"
        ).inc()
        current_tracer().instant(
            "scrub", f"cycle {self.cycle} done",
            chunks=self.cycle_chunks, seconds=elapsed,
        )
        verified = self.cycle_chunks
        self.cycle += 1
        self._begun = False
        self.current_disk = None
        self._export()
        return verified

    async def _scrub_disk(self, disk_id: int) -> None:
        service = self.service
        store = service.server.store
        chunks = await asyncio.to_thread(store.chunks_on_disk, disk_id)
        verified_counter = current_registry().counter(
            SCRUB_VERIFIED, "chunks verified by the scrub plane"
        )
        for cid in chunks:
            await self._pace()
            if service.is_quarantined(disk_id, cid):
                continue  # already caught; its read-repair is pending
            corrupt = False
            async with service.gate.read(disk_id, foreground=False):
                try:
                    await asyncio.to_thread(self._verify, store, disk_id, cid)
                except ChunkChecksumError:
                    corrupt = True
                except ChunkNotFoundError:
                    continue  # deleted/moved underneath us: not our problem
            self.chunks_verified += 1
            self.cycle_chunks += 1
            verified_counter.inc()
            if corrupt:
                await self._handle_corrupt(disk_id, cid)

    @staticmethod
    def _verify(store, disk_id: int, cid) -> None:
        verify = getattr(store, "verify_chunk", None)
        if verify is not None:
            verify(disk_id, cid)
        else:
            store.get(disk_id, cid)  # verifying backends raise on mismatch

    async def _handle_corrupt(self, disk_id: int, cid) -> None:
        service = self.service
        newly = service.quarantine_chunk(
            disk_id, cid.stripe_index, cid.shard_index,
            source="scrub", auto_repair=False,
        )
        if newly:
            self.corrupt_found += 1
        if not self.config.auto_repair:
            return
        try:
            await service.repair_chunk(cid.stripe_index, cid.shard_index)
            self.repaired += 1
        except (StorageError, CodingError, ChunkQuarantinedError) as exc:
            # Still quarantined: blocked from serving, retried next cycle.
            self.repair_failures += 1
            current_tracer().instant(
                "scrub", f"read-repair failed s{cid.stripe_index}/{cid.shard_index}",
                error=repr(exc),
            )

    async def _pace(self) -> None:
        """Sleep the inter-verify pause, scaled (or parked) by brownout."""
        base = self.config.interval_ms / 1000.0
        while True:
            controller = self.service.overload
            throttle = (
                controller.scrub_throttle() if controller is not None else 1.0
            )
            if throttle is None:  # shedding: park until the daemon recovers
                if not self.parked:
                    self.parked = True
                    self._export()
                await asyncio.sleep(self.config.park_poll_s)
                continue
            if self.parked:
                self.parked = False
                self._export()
            if base > 0:
                await asyncio.sleep(base * throttle)
            return

    # -------------------------------------------------------------- reporting
    _disks_total = 0

    def _progress(self) -> float:
        total = self._disks_total or len(self.service.server.disks)
        if not total:
            return 0.0
        return min(1.0, len(self._done_disks) / total)

    def _eta_seconds(self) -> Optional[float]:
        if self._cycle_started is None or not self._begun:
            return None
        done = len(self._done_disks)
        total = self._disks_total or len(self.service.server.disks)
        if not done or done >= total:
            return None
        elapsed = time.monotonic() - self._cycle_started
        return elapsed / done * (total - done)

    def _export(self) -> None:
        registry = current_registry()
        state = 2 if self.parked else (1 if self.running else 0)
        registry.gauge(
            SCRUB_STATE, "scrubber state (0 stopped, 1 running, 2 parked)"
        ).set(state)
        registry.gauge(
            SCRUB_PROGRESS, "fraction of the current scrub cycle completed"
        ).set(self._progress())
        eta = self._eta_seconds()
        registry.gauge(
            SCRUB_ETA, "estimated seconds to finish the current scrub cycle"
        ).set(eta if eta is not None else 0.0)

    def status(self) -> ScrubStatus:
        """Live snapshot for the ``stats``/``scrub`` verbs and ``top``."""
        self._export()
        return ScrubStatus(
            cycle=self.cycle,
            cycles_completed=self.cycles_completed,
            running=self.running,
            parked=self.parked,
            disks_total=self._disks_total or len(self.service.server.disks),
            disks_done=len(self._done_disks),
            progress=round(self._progress(), 4),
            eta_seconds=self._eta_seconds(),
            chunks_verified=self.chunks_verified,
            cycle_chunks=self.cycle_chunks,
            corrupt_found=self.corrupt_found,
            repaired=self.repaired,
            repair_failures=self.repair_failures,
            quarantined=len(self.service.quarantine),
            last_cycle_seconds=self.last_cycle_seconds,
            resumed_cycles=self.resumed_cycles,
            interval_ms=self.config.interval_ms,
        )
