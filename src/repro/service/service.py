"""The asyncio repair service: concurrent repairs + a foreground front door.

:class:`RepairService` multiplexes many disk repairs over one
:class:`~repro.hdss.server.HighDensityStorageServer` whose chunk store is
(usually) a :class:`~repro.hdss.store.ShardedChunkStore`:

* ``submit_repair(disk)`` plans that disk's repair with the configured
  HD-PSR scheme and runs each stripe's partial decode as an asyncio task —
  reads fan out concurrently per round, gated by per-disk semaphores
  (:class:`~repro.service.admission.DiskGate`) so no spindle is swamped,
  and rebuilt chunks stream through the batched
  :class:`~repro.service.sharding.AsyncShardWriter`.
* ``read_chunk(stripe, shard)`` is the client-facing read path. Reads of
  healthy chunks take a foreground-priority slot on the owning disk; reads
  of *lost* chunks become degraded reads that **piggyback on the in-flight
  repair**: every stripe a repair job owns exposes a future resolving to
  its decoded payloads, so a client read of a dying stripe costs zero
  extra survivor reads once the repair has decoded it.

The service keeps the library's *modeled* clock alongside wall time: every
repair read advances a per-disk channel to ``busy-until + transfer_time``,
so ``modeled_now`` is the aggregate repair makespan with true cross-disk
parallelism — directly comparable against the single-threaded
:class:`~repro.core.executor.DataPathExecutor`'s serial clock.

Crash consistency reuses the repair journal unchanged: each job writes
``begin`` / ``round_commit`` / ``stripe_done`` records into its own
directory (``journal_root/disk-NNN``), and ``submit_repair(disk,
resume=True)`` replays finished stripes byte-for-byte and continues
in-flight decodes from their last committed round.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import RepairAlgorithm, RepairContext
from repro.core.executor import ReadPolicy
from repro.core.plans import RepairPlan, StripePlan
from repro.ec.partial import PartialDecoder
from repro.ec.stripe import ChunkId, Stripe
from repro.errors import (
    ChunkChecksumError,
    ChunkNotFoundError,
    ChunkQuarantinedError,
    CodingError,
    ConfigurationError,
    DiskFailedError,
    InsufficientShardsError,
    JournalError,
    LatentSectorError,
    StorageError,
)
from repro.faults.injector import FaultInjector
from repro.faults.report import LOST, RECOVERED, REPLANNED, DataLossReport
from repro.faults.spec import FaultSchedule
from repro.hdss.prober import ActiveProber
from repro.hdss.server import HighDensityStorageServer, ScrubReport
from repro.journal.journal import RepairJournal, RepairState, load_state
from repro.obs.context import current_registry, current_tracer
from repro.service.admission import DiskGate
from repro.service.overload import (
    CLASS_DEGRADED,
    CLASS_READ,
    Deadline,
    OverloadConfig,
    OverloadController,
)
from repro.service.sharding import AsyncShardWriter

DEGRADED_READS = "hdpsr_service_degraded_reads_total"
FOREGROUND_READS = "hdpsr_service_foreground_reads_total"
REPAIR_STRIPES = "hdpsr_service_repair_stripes_total"
REPAIRS = "hdpsr_service_repairs_total"
#: Counter: chunks quarantined after a failed verify, by detection source.
CORRUPT_FOUND = "hdpsr_service_corrupt_chunks_total"
#: Counter: quarantined chunks replaced by a verified read-repair.
CORRUPT_REPAIRED = "hdpsr_service_corrupt_repaired_total"
#: P² summary: seconds from corruption seeding to quarantine (only
#: observable when the seeding side stamped the chunk, e.g. chaos runs).
DETECTION_LATENCY = "hdpsr_scrub_detection_latency_seconds"
#: P² summary of wall-clock front-door read latency, labelled by path.
READ_LATENCY = "hdpsr_service_read_latency_seconds"
#: Gauge: stripe decodes currently in flight across all jobs.
INFLIGHT_STRIPES = "hdpsr_service_inflight_stripes"

#: Quantiles tracked for foreground latency (the SLO tail).
READ_LATENCY_QUANTILES = (0.5, 0.9, 0.99, 0.999)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`RepairService`.

    Attributes:
        max_concurrent_stripes: stripes one repair job decodes at once;
            this (times round width + targets) bounds the service's
            decode-buffer footprint, taking over the role the repair
            memory's admission cap plays on the sequential path.
        per_disk_reads: concurrent reads allowed per disk (gate width).
        queue_depth: per-shard write-queue bound (backpressure).
        batch_size: chunks coalesced into one ``put_many``.
        policy: read-hardening knobs applied to modeled repair reads
            (timeouts, retries, hedging), same semantics as the
            sequential executor.
        journal_root: directory holding one journal per repaired disk
            (``journal_root/disk-NNN``); ``None`` disables journaling.
        durable_journal: fsync journal commits (tests turn this off).
        overload: brownout-controller knobs
            (:class:`~repro.service.overload.OverloadConfig`); ``None``
            disables adaptive overload control entirely (library default —
            ``hdpsr serve`` enables it unless ``--no-overload-control``).
    """

    max_concurrent_stripes: int = 4
    per_disk_reads: int = 2
    queue_depth: int = 64
    batch_size: int = 8
    policy: Optional[ReadPolicy] = None
    journal_root: "str | Path | None" = None
    durable_journal: bool = True
    overload: Optional[OverloadConfig] = None

    def __post_init__(self) -> None:
        if self.max_concurrent_stripes < 1:
            raise ConfigurationError(
                f"max_concurrent_stripes must be >= 1, got {self.max_concurrent_stripes}"
            )


class _ShardDead(Exception):
    """A survivor shard is permanently unreadable (service-internal)."""

    def __init__(self, shard: int, cause: Exception) -> None:
        super().__init__(str(cause))
        self.shard = shard
        self.cause = cause


class _ShardSlow(Exception):
    """A survivor read exhausted its retry budget (service-internal)."""

    def __init__(self, shard: int) -> None:
        super().__init__(f"retries exhausted on shard {shard}")
        self.shard = shard


@dataclass
class ServiceRepairResult:
    """Terminal outcome of one ``submit_repair`` job."""

    disk: int
    algorithm: str
    stripes: int
    stripes_repaired: int
    stripes_lost: int
    chunks_rebuilt: int
    resumed_stripes: int
    remapped: int
    #: Modeled seconds this job occupied on the shared disk channels.
    modeled_seconds: float
    wall_seconds: float
    loss: DataLossReport
    scrub: ScrubReport

    @property
    def certified(self) -> bool:
        if self.loss.has_loss:
            return False
        return self.scrub.healthy and not self.scrub.unpopulated

    @property
    def exit_code(self) -> int:
        return self.loss.exit_code

    def summary(self) -> dict:
        return {
            "disk": self.disk,
            "algorithm": self.algorithm,
            "stripes": self.stripes,
            "stripes_repaired": self.stripes_repaired,
            "stripes_lost": self.stripes_lost,
            "chunks_rebuilt": self.chunks_rebuilt,
            "resumed_stripes": self.resumed_stripes,
            "remapped": self.remapped,
            "modeled_seconds": self.modeled_seconds,
            "wall_seconds": self.wall_seconds,
            "certified": self.certified,
            "exit_code": self.exit_code,
        }


@dataclass
class RepairTicket:
    """Handle to one in-flight repair job."""

    job_id: int
    disk: int
    task: "asyncio.Task[ServiceRepairResult]"

    @property
    def done(self) -> bool:
        return self.task.done()

    async def wait(self) -> ServiceRepairResult:
        return await self.task


@dataclass
class _Job:
    """Supervisor-internal state of one repair job."""

    disk: int
    stripe_indices: List[int]
    survivor_ids: List[List[int]]
    plan: RepairPlan
    failed_all: List[int]
    journal: Optional[RepairJournal] = None
    state: Optional[RepairState] = None
    loss: DataLossReport = field(default_factory=DataLossReport)
    writebacks: List[Tuple[int, int, int]] = field(default_factory=list)
    chunks_rebuilt: int = 0
    resumed_stripes: int = 0
    modeled_start: float = 0.0
    modeled_end: float = 0.0
    # --- live-telemetry bookkeeping (read by RepairService.progress) ---
    job_id: int = -1
    algorithm: str = ""
    started_wall: float = 0.0
    stripes_done: int = 0
    finished: bool = False

    def progress(self) -> dict:
        """One job's live progress row (JSON-safe, served by ``stats``)."""
        total = len(self.stripe_indices)
        done = self.stripes_done
        elapsed = time.monotonic() - self.started_wall
        if self.finished:
            eta = 0.0
        elif done:
            eta = elapsed / done * (total - done)
        else:
            eta = None
        return {
            "job_id": self.job_id,
            "disk": self.disk,
            "algorithm": self.algorithm,
            "stripes_total": total,
            "stripes_done": done,
            "stripes_lost": len(self.loss.lost),
            "chunks_rebuilt": self.chunks_rebuilt,
            "resumed_stripes": self.resumed_stripes,
            "replans": self.loss.replans,
            "fresh_restarts": self.loss.fresh_restarts,
            "checksum_failures": self.loss.checksum_failures,
            "elapsed_seconds": elapsed,
            "eta_seconds": eta,
            "done": self.finished,
        }


class RepairService:
    """Supervises concurrent repairs and serves reads while they run.

    Args:
        server: the storage server (ideally store-sharded) to operate.
        algorithm: repair scheme used to plan every submitted repair.
        config: service knobs; defaults are test-friendly.
        faults: optional fault schedule, applied on the modeled clock
            exactly as on the sequential path (one injector per service —
            the schedule is server-wide, not per-job).
        fence: optional ownership fence, called with the repaired disk id
            immediately before every durable effect (journal commits,
            chunk write-backs, spare remapping). Cluster daemons install
            :meth:`repro.service.cluster.ClusterNode.check_fence` here so
            a stale lease holder fails with
            :class:`~repro.errors.FencedError` *at the commit point*
            instead of clobbering the new owner's work.
    """

    def __init__(
        self,
        server: HighDensityStorageServer,
        algorithm: RepairAlgorithm,
        config: Optional[ServiceConfig] = None,
        faults: Optional[FaultSchedule] = None,
        fence=None,
    ) -> None:
        self.server = server
        self.algorithm = algorithm
        self.config = config or ServiceConfig()
        self.faults = faults
        self.fence = fence
        self.gate = DiskGate(self.config.per_disk_reads)
        #: Brownout controller (None = overload control disabled).
        self.overload: Optional[OverloadController] = (
            OverloadController(self.config.overload)
            if self.config.overload is not None
            else None
        )
        self.gate.controller = self.overload
        self.writer = AsyncShardWriter(
            server.store,
            queue_depth=self.config.queue_depth,
            batch_size=self.config.batch_size,
        )
        self._injector: Optional[FaultInjector] = None
        #: Per-disk modeled channel busy-until times.
        self._channels: Dict[int, float] = {}
        #: Max modeled end time seen anywhere (aggregate makespan).
        self.modeled_now = 0.0
        #: stripe index -> future of {target_shard: payload} (or None=lost).
        self._repair_futures: Dict[int, "asyncio.Future"] = {}
        #: Stripes owned by an active job (overlapping repairs skip them).
        self._claimed: set = set()
        self._tickets: Dict[int, RepairTicket] = {}
        #: job_id -> supervisor job state, kept after completion for `top`.
        self._jobs: Dict[int, _Job] = {}
        self._next_job = 0
        #: Quarantined chunks: (disk_id, ChunkId) -> wall time of detection.
        #: A quarantined chunk is never served and never used as a decode
        #: survivor until its read-repair lands and re-verifies.
        self.quarantine: Dict[Tuple[int, ChunkId], float] = {}
        #: Corruption tallies (mirrored into `stats` by the telemetry plane).
        self.corrupt_found = 0
        self.corrupt_repaired = 0
        #: Seed times of injected corruptions (chaos plane stamps these via
        #: :meth:`note_corruption_seeded` so detection latency is measurable).
        self._corruption_seeded: Dict[Tuple[int, ChunkId], float] = {}
        #: In-flight background read-repairs spawned by quarantine.
        self._chunk_repairs: set = set()

    # ------------------------------------------------------------- lifecycle
    async def close(self) -> None:
        """Flush writes and stop the shard drain tasks."""
        if self._chunk_repairs:
            await asyncio.gather(*list(self._chunk_repairs), return_exceptions=True)
        await self.writer.close()

    # --------------------------------------------------------------- fencing
    def _check_fence(self, disk_id: int) -> None:
        """Refuse a durable effect unless we still own ``disk_id``'s shard."""
        if self.fence is not None:
            self.fence(disk_id)

    # ------------------------------------------------- quarantine & read-repair
    def is_quarantined(self, disk_id: int, chunk_id: ChunkId) -> bool:
        """Whether a chunk is blocked from being served (failed verify)."""
        return (disk_id, chunk_id) in self.quarantine

    def note_corruption_seeded(
        self, disk_id: int, stripe_index: int, shard_idx: int
    ) -> None:
        """Stamp an injected corruption's seed time (chaos/test plane only)
        so the detection-latency summary has a start point to measure from."""
        key = (disk_id, ChunkId(stripe_index, shard_idx))
        self._corruption_seeded.setdefault(key, time.monotonic())

    def quarantine_chunk(
        self,
        disk_id: int,
        stripe_index: int,
        shard_idx: int,
        source: str = "scrub",
        auto_repair: bool = False,
    ) -> bool:
        """Mark one chunk quarantined after a failed verify.

        Returns True when the chunk was newly quarantined (False for a
        repeat detection). ``source`` labels who caught it (``scrub`` /
        ``foreground`` / ``degraded`` / ``repair``). With ``auto_repair``
        a background single-chunk read-repair task is spawned; the scrub
        plane passes False and awaits :meth:`repair_chunk` itself so its
        cycle accounting stays synchronous.
        """
        cid = ChunkId(stripe_index, shard_idx)
        key = (disk_id, cid)
        if key in self.quarantine:
            return False
        now = time.monotonic()
        self.quarantine[key] = now
        self.corrupt_found += 1
        registry = current_registry()
        registry.counter(
            CORRUPT_FOUND, "chunks quarantined after a failed verify, by source"
        ).labels(source=source).inc()
        seeded = self._corruption_seeded.pop(key, None)
        if seeded is not None:
            registry.summary(
                DETECTION_LATENCY,
                "seconds from corruption seeding to quarantine",
                quantiles=(0.5, 0.9, 0.99),
            ).observe(now - seeded)
        current_tracer().instant(
            "service", f"quarantine s{stripe_index}/{shard_idx}",
            disk=disk_id, stripe=stripe_index, shard=shard_idx, source=source,
        )
        if auto_repair:
            task = asyncio.get_running_loop().create_task(
                self._auto_repair_chunk(stripe_index, shard_idx),
                name=f"chunk-repair-{stripe_index}.{shard_idx}",
            )
            self._chunk_repairs.add(task)
            task.add_done_callback(self._chunk_repairs.discard)
        return True

    async def _auto_repair_chunk(self, stripe_index: int, shard_idx: int) -> None:
        """Background read-repair; failures leave the chunk quarantined
        (blocked, served degraded) rather than crashing the daemon."""
        try:
            await self.repair_chunk(stripe_index, shard_idx)
        except (StorageError, CodingError, ChunkQuarantinedError) as exc:
            current_tracer().instant(
                "service", f"read-repair failed s{stripe_index}/{shard_idx}",
                error=repr(exc),
            )

    async def repair_chunk(self, stripe_index: int, shard_idx: int) -> bool:
        """Synthesize one chunk from k survivors and write it back verified.

        The single-chunk partial-stripe repair behind quarantine: decode
        the target from k readable, un-quarantined survivors (background
        gate slots — a read-repair never takes a slot a foreground read is
        waiting on), ``put`` the result (which writes a fresh CRC32C
        sidecar atomically), re-verify the bytes on disk, then lift the
        quarantine. Byte identity is structural: the decode reproduces
        exactly the shard the encoder originally wrote.

        Raises :class:`InsufficientShardsError` when fewer than k clean
        survivors remain and :class:`ChunkQuarantinedError` when a
        survivor itself fails verification mid-repair (it gets
        quarantined too; a retry will plan around it).
        """
        server = self.server
        stripe = server.layout[stripe_index]
        if not 0 <= shard_idx < stripe.n:
            raise ConfigurationError(f"stripe has no shard {shard_idx}")
        disk_id = stripe.disks[shard_idx]
        cid = ChunkId(stripe_index, shard_idx)
        failed = server.failed_disks()
        survivors = [
            s
            for s in stripe.surviving_shards(failed)
            if s != shard_idx
            and server.store.contains(stripe.disks[s], ChunkId(stripe_index, s))
            and not self.is_quarantined(stripe.disks[s], ChunkId(stripe_index, s))
        ][: stripe.k]
        if len(survivors) < stripe.k:
            raise InsufficientShardsError(
                f"stripe {stripe_index}: {len(survivors)} clean survivors < k; "
                f"cannot read-repair shard {shard_idx}"
            )
        decoder = PartialDecoder(
            server.code, survivors, [shard_idx], chunk_size=server.config.chunk_size
        )

        async def fetch(s: int) -> Tuple[int, np.ndarray]:
            d = stripe.disks[s]
            async with self.gate.read(d, foreground=False):
                try:
                    return s, await asyncio.to_thread(
                        server.store.get, d, ChunkId(stripe_index, s)
                    )
                except ChunkChecksumError:
                    self.quarantine_chunk(
                        d, stripe_index, s, source="repair", auto_repair=False
                    )
                    raise ChunkQuarantinedError(
                        f"survivor shard {s} of stripe {stripe_index} failed "
                        "verification during read-repair",
                        disk=d, stripe=stripe_index, shard=s,
                    ) from None

        reads = await asyncio.gather(*(fetch(s) for s in survivors))
        await asyncio.to_thread(decoder.feed, dict(reads))
        data = decoder.result(shard_idx)
        self._check_fence(disk_id)
        await asyncio.to_thread(server.store.put, disk_id, cid, data)
        verify = getattr(server.store, "verify_chunk", None)
        if verify is not None:
            await asyncio.to_thread(verify, disk_id, cid)
        self.quarantine.pop((disk_id, cid), None)
        self.corrupt_repaired += 1
        current_registry().counter(
            CORRUPT_REPAIRED, "quarantined chunks replaced by verified read-repair"
        ).inc()
        current_tracer().instant(
            "service", f"read-repair s{stripe_index}/{shard_idx}",
            disk=disk_id, stripe=stripe_index, shard=shard_idx,
        )
        return True

    # ------------------------------------------------------------ fault glue
    def _ensure_injector(self, skip_crashes: int) -> Optional[FaultInjector]:
        if self.faults is None:
            return None
        if self._injector is None:
            self._injector = FaultInjector(
                self.server, self.faults, skip_crashes=skip_crashes
            )
            self._injector.attach()
        else:
            self._injector.skip_crashes = max(
                self._injector.skip_crashes, skip_crashes
            )
        return self._injector

    # --------------------------------------------------------------- planning
    def _plan_job(self, disk_id: int) -> Tuple[List[int], List[List[int]], RepairPlan]:
        """Plan one disk's repair (runs off the event loop)."""
        server = self.server
        if not server.disk(disk_id).is_failed:
            raise StorageError(
                f"disk {disk_id} is healthy; fail it before submitting a repair"
            )
        failed_all = server.failed_disks()
        stripe_indices = [
            si
            for si in server.stripes_needing_repair([disk_id])
            if si not in self._claimed
        ]
        if not stripe_indices:
            raise StorageError(
                f"disk {disk_id} holds no unclaimed stripes; nothing to repair"
            )
        survivor_ids: List[List[int]] = []
        rows: List[List[float]] = []
        size = server.config.chunk_size
        prober = (
            ActiveProber(server) if self.algorithm.requires_probing else None
        )
        for si in stripe_indices:
            stripe = server.layout[si]
            shard_ids = server.survivor_shards(stripe, failed_all)
            survivor_ids.append(shard_ids)
            if prober is not None:
                rows.append(
                    [prober.estimated_chunk_time(stripe.disks[j]) for j in shard_ids]
                )
            else:
                rows.append(
                    [
                        server.disks[stripe.disks[j]].transfer_time(size, jittered=False)
                        for j in shard_ids
                    ]
                )
        L = np.asarray(rows, dtype=np.float64)
        disk_ids = np.asarray(
            [
                [server.layout[si].disks[j] for j in shards]
                for si, shards in zip(stripe_indices, survivor_ids)
            ],
            dtype=np.int64,
        )
        ctx = RepairContext()
        ctx.disk_ids = disk_ids
        plan = self.algorithm.build_plan(L, server.config.memory_chunks, context=ctx)
        return stripe_indices, survivor_ids, plan

    def _journal_dir(self, disk_id: int) -> Optional[Path]:
        if self.config.journal_root is None:
            return None
        return Path(self.config.journal_root) / f"disk-{disk_id:03d}"

    # ------------------------------------------------------------ submission
    def submit_repair(self, disk_id: int, resume: bool = False) -> RepairTicket:
        """Start repairing ``disk_id`` in the background; returns a ticket.

        With ``resume=True`` the job continues from this disk's journal
        directory (``journal_root/disk-NNN``): the journaled plan is
        reused verbatim, finished stripes replay from journaled payloads,
        and in-flight decodes continue from the last committed round.
        """
        job_id = self._next_job
        self._next_job += 1
        task = asyncio.get_running_loop().create_task(
            self._run_repair(disk_id, resume, job_id), name=f"repair-{disk_id}"
        )
        ticket = RepairTicket(job_id=job_id, disk=disk_id, task=task)
        self._tickets[job_id] = ticket
        return ticket

    def ticket(self, job_id: int) -> RepairTicket:
        if job_id not in self._tickets:
            raise ConfigurationError(f"no such repair ticket {job_id}")
        return self._tickets[job_id]

    def progress(self) -> List[dict]:
        """Live progress of every job this service has supervised.

        Jobs stay listed after completion (with ``done: true``) so
        ``hdpsr top`` keeps showing finished repairs' terminal counts;
        jobs whose planning has not finished yet are not listed.
        """
        return [self._jobs[jid].progress() for jid in sorted(self._jobs)]

    # ---------------------------------------------------------- the job body
    async def _run_repair(
        self, disk_id: int, resume: bool, job_id: int = -1
    ) -> ServiceRepairResult:
        started = time.monotonic()
        jdir = self._journal_dir(disk_id)
        tracer = current_tracer()

        if resume:
            if jdir is None:
                raise JournalError("resume needs a journal_root in ServiceConfig")
            state = await asyncio.to_thread(load_state, jdir)
            fp = self.server.config.fingerprint()
            if state.fingerprint != fp:
                raise JournalError(
                    f"journal {jdir} was written by a different server "
                    "configuration; refusing to resume"
                )
            journal = RepairJournal(jdir, durable=self.config.durable_journal)
            journal.mark_resume(state.clock)
            self._ensure_injector(state.resume_count + 1)
            job = _Job(
                disk=disk_id,
                stripe_indices=list(state.stripe_indices),
                survivor_ids=[list(r) for r in state.survivor_ids],
                plan=RepairPlan.from_dict(state.plan),
                failed_all=list(state.failed_disks),
                journal=journal,
                state=state,
            )
            self.modeled_now = max(self.modeled_now, state.clock)
        else:
            stripe_indices, survivor_ids, plan = await asyncio.to_thread(
                self._plan_job, disk_id
            )
            self._ensure_injector(0)
            journal = None
            if jdir is not None:
                journal = RepairJournal(jdir, durable=self.config.durable_journal)
                journal.begin(
                    algorithm=plan.algorithm,
                    plan=plan.to_dict(),
                    stripe_indices=[int(s) for s in stripe_indices],
                    survivor_ids=[[int(s) for s in row] for row in survivor_ids],
                    failed_disks=[int(d) for d in self.server.failed_disks()],
                    fingerprint=self.server.config.fingerprint(),
                )
            job = _Job(
                disk=disk_id,
                stripe_indices=stripe_indices,
                survivor_ids=survivor_ids,
                plan=plan,
                failed_all=self.server.failed_disks(),
                journal=journal,
            )

        job.job_id = job_id
        job.algorithm = job.plan.algorithm
        job.started_wall = started
        self._jobs[job_id] = job

        job.modeled_start = self.modeled_now
        loop = asyncio.get_running_loop()
        for si in job.stripe_indices:
            if si not in self._repair_futures:
                self._repair_futures[si] = loop.create_future()
            self._claimed.add(si)

        sem = asyncio.Semaphore(self.config.max_concurrent_stripes)
        tasks = [
            loop.create_task(self._stripe_bounded(sem, job, sp))
            for sp in job.plan.stripe_plans
        ]
        try:
            await asyncio.gather(*tasks)
            await self.writer.flush()
        except BaseException:
            # SimulatedCrash (or cancellation): stop cleanly, keep the
            # journal — a resumed service picks up from the last commit.
            job.finished = True
            for t in tasks:
                t.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            self._release_stripes(job)
            if job.journal is not None:
                job.journal.close()
            raise

        self._check_fence(job.disk)
        remapped = self.server.commit_writebacks(job.writebacks)
        kept = [
            si
            for si in job.stripe_indices
            if job.loss.stripes.get(si) != LOST
        ]
        scrub = (
            await asyncio.to_thread(self.server.scrub, kept)
            if kept
            else ScrubReport()
        )
        job.modeled_end = self.modeled_now
        if job.journal is not None:
            job.journal.complete(
                stripes_repaired=len(job.loss.recovered) + len(job.loss.replanned),
                stripes_lost=len(job.loss.lost),
                chunks_rebuilt=job.chunks_rebuilt,
                resumed_stripes=job.resumed_stripes,
                modeled_seconds=self.modeled_now,
            )
            job.journal.close()
        self._release_stripes(job)
        if self._injector is not None:
            for kind, n in self._injector.applied.items():
                job.loss.count_fault(kind, n)
        result = ServiceRepairResult(
            disk=disk_id,
            algorithm=job.plan.algorithm,
            stripes=len(job.stripe_indices),
            stripes_repaired=len(job.loss.recovered) + len(job.loss.replanned),
            stripes_lost=len(job.loss.lost),
            chunks_rebuilt=job.chunks_rebuilt,
            resumed_stripes=job.resumed_stripes,
            remapped=remapped,
            modeled_seconds=self.modeled_now - job.modeled_start,
            wall_seconds=time.monotonic() - started,
            loss=job.loss,
            scrub=scrub,
        )
        job.finished = True
        current_registry().counter(
            REPAIRS, "repair jobs finished"
        ).labels(outcome="lost" if job.loss.has_loss else "recovered").inc()
        tracer.instant(
            "service", f"repair disk {disk_id} done",
            stripes=result.stripes, lost=result.stripes_lost,
        )
        return result

    def _release_stripes(self, job: _Job) -> None:
        for si in job.stripe_indices:
            fut = self._repair_futures.pop(si, None)
            if fut is not None and not fut.done():
                fut.set_result(None)  # readers fall back to standalone decode
            self._claimed.discard(si)

    async def _stripe_bounded(
        self, sem: asyncio.Semaphore, job: _Job, sp: StripePlan
    ) -> None:
        async with sem:
            inflight = current_registry().gauge(
                INFLIGHT_STRIPES, "stripe decodes in flight across all jobs"
            )
            inflight.inc()
            tracer = current_tracer()
            si = job.stripe_indices[sp.stripe_index]
            try:
                if tracer.enabled:
                    with tracer.span(
                        "stripe", f"stripe-{si}", track="service",
                        stripe=si, disk=job.disk, job=job.job_id,
                    ):
                        await self._repair_stripe(job, sp)
                else:
                    await self._repair_stripe(job, sp)
                job.stripes_done += 1
            finally:
                inflight.dec()

    # ----------------------------------------------------------- stripe task
    async def _repair_stripe(self, job: _Job, sp: StripePlan) -> None:
        server = self.server
        si = job.stripe_indices[sp.stripe_index]
        stripe = server.layout[si]
        shards = list(job.survivor_ids[sp.stripe_index])
        targets = stripe.lost_shards(job.failed_all)
        if not targets:
            raise StorageError(f"stripe {si} lost nothing on {job.failed_all}")
        state = job.state

        if state is not None and si in state.done:
            await self._replay_stripe(job, si, targets)
            return

        outcome = RECOVERED
        per_round = max(1, sp.peak_memory_chunks() - len(targets))
        if state is not None and si in state.inflight:
            restored = dict(state.inflight[si])
            outcome = str(restored.pop("outcome", RECOVERED))
            decoder = PartialDecoder.from_state(server.code, restored)
            job.resumed_stripes += 1
            queue = self._rounds_of(decoder.pending, per_round)
        else:
            decoder = PartialDecoder(
                server.code, shards, targets, chunk_size=server.config.chunk_size
            )
            queue = [[shards[col] for col in rnd] for rnd in sp.rounds]

        stripe_clock = self.modeled_now
        while queue:
            rnd = [s for s in queue.pop(0) if s in set(decoder.pending)]
            if not rnd:
                continue
            reads = await asyncio.gather(
                *(
                    self._read_survivor(job, stripe, si, s, stripe_clock)
                    for s in rnd
                ),
                return_exceptions=True,
            )
            fed: Dict[int, np.ndarray] = {}
            fault: Optional[Exception] = None
            for shard_idx, res in zip(rnd, reads):
                if isinstance(res, (_ShardDead, _ShardSlow)):
                    fault = fault or res
                elif isinstance(res, BaseException):
                    raise res
                else:
                    data, end = res
                    fed[shard_idx] = data
                    stripe_clock = max(stripe_clock, end)
            if fed:
                tracer = current_tracer()
                if tracer.enabled:
                    with tracer.span(
                        "decode", f"stripe-{si}/feed", track="service",
                        stripe=si, chunks=len(fed),
                    ):
                        await asyncio.to_thread(decoder.feed, fed)
                else:
                    await asyncio.to_thread(decoder.feed, fed)
                if job.journal is not None:
                    self._check_fence(job.disk)
                    await asyncio.to_thread(
                        job.journal.round_commit,
                        si, self.modeled_now, decoder.to_state(), outcome,
                    )
            if fault is None:
                continue

            if isinstance(fault, _ShardSlow):
                new_rounds = self._replan(
                    job, decoder, stripe, si, fault.shard, per_round,
                    allow_restart=False,
                )
                if new_rounds is not None:
                    job.loss.hedged_reads += 1
                    outcome = REPLANNED
                    queue = new_rounds
                    continue
                # No alternative survivor: force the slow read through.
                data, end = await self._read_survivor(
                    job, stripe, si, fault.shard, stripe_clock, forced=True
                )
                stripe_clock = max(stripe_clock, end)
                await asyncio.to_thread(decoder.feed, {fault.shard: data})
                continue

            new_rounds = self._replan(
                job, decoder, stripe, si, fault.shard, per_round,
                allow_restart=True,
            )
            if new_rounds is None:
                outcome = LOST
                break
            outcome = REPLANNED
            queue = new_rounds

        fut = self._repair_futures.get(si)
        if outcome == LOST:
            job.loss.record(si, LOST)
            if fut is not None and not fut.done():
                fut.set_result(None)
            if job.journal is not None:
                self._check_fence(job.disk)
                await asyncio.to_thread(
                    job.journal.stripe_done, si, LOST, self.modeled_now
                )
            current_registry().counter(
                REPAIR_STRIPES, "stripe repairs finished"
            ).labels(outcome=LOST).inc()
            return

        results = await asyncio.to_thread(decoder.results)
        # Resolve the piggyback future *before* persisting: a degraded
        # read only needs the decoded bytes, not their new home.
        if fut is not None and not fut.done():
            fut.set_result(results)

        written: List[Tuple[int, int, np.ndarray]] = []
        exclude = list(stripe.disks)
        self._check_fence(job.disk)
        for target in targets:
            spare = server.pick_spare(exclude=exclude)
            exclude.append(spare)
            await self.writer.put(spare, ChunkId(si, target), results[target])
            job.writebacks.append((si, target, spare))
            written.append((target, spare, results[target]))
            job.chunks_rebuilt += 1
        job.loss.record(si, outcome)
        if job.journal is not None:
            await asyncio.to_thread(
                job.journal.stripe_done, si, outcome, self.modeled_now, written
            )
        current_registry().counter(
            REPAIR_STRIPES, "stripe repairs finished"
        ).labels(outcome=outcome).inc()

    async def _replay_stripe(self, job: _Job, si: int, targets: List[int]) -> None:
        """Redo a journaled stripe outcome: re-put payloads, zero reads."""
        done = job.state.done[si]
        job.resumed_stripes += 1
        payloads: Dict[int, np.ndarray] = {}
        self._check_fence(job.disk)
        for target, spare, payload in done.writebacks:
            if payload is None:
                continue
            cid = ChunkId(si, target)
            if not self.server.store.contains(spare, cid):
                await self.writer.put(spare, cid, payload)
            job.writebacks.append((si, target, spare))
            job.chunks_rebuilt += 1
            payloads[target] = payload
        job.loss.record(si, done.outcome)
        job.loss.resumed_stripes += 1
        fut = self._repair_futures.get(si)
        if fut is not None and not fut.done():
            fut.set_result(payloads if done.outcome != LOST else None)

    # ---------------------------------------------------------------- replan
    def _rounds_of(self, shard_ids: Sequence[int], per_round: int) -> List[List[int]]:
        per_round = max(1, per_round)
        return [
            list(shard_ids[i : i + per_round])
            for i in range(0, len(shard_ids), per_round)
        ]

    def _readable_shards(
        self, stripe: Stripe, si: int, exclude: set
    ) -> List[int]:
        server = self.server
        store = server.store
        out: List[Tuple[bool, int]] = []
        for sid, disk_id in enumerate(stripe.disks):
            if sid in exclude:
                continue
            disk = server.disks[disk_id]
            if disk.is_failed:
                continue
            cid = ChunkId(si, sid)
            if not store.contains(disk_id, cid):
                continue
            bad = getattr(store, "_bad", None)
            if bad is not None and (disk_id, cid) in bad:
                continue
            if self.is_quarantined(disk_id, cid):
                continue
            out.append((disk.is_slow, sid))
        return [sid for _, sid in sorted(out)]

    def _replan(
        self,
        job: _Job,
        decoder: PartialDecoder,
        stripe: Stripe,
        si: int,
        bad_shard: int,
        per_round: int,
        allow_restart: bool,
    ) -> Optional[List[List[int]]]:
        """Same salvage ladder as the sequential executor: replan, restart,
        or declare the stripe lost (returns None)."""
        k, t = decoder.code.k, len(decoder.targets)
        exclude = set(decoder.targets) | {bad_shard}
        candidates = self._readable_shards(stripe, si, exclude)
        fed = set(decoder.fed)
        pending_alive = [s for s in decoder.pending if s in set(candidates)]
        fresh = [
            s for s in candidates if s not in set(pending_alive) and s not in fed
        ]
        refed = [s for s in candidates if s in fed]
        new_reads = (pending_alive + fresh + refed)[: k - t]
        if len(new_reads) == k - t:
            try:
                decoder.replan(new_reads)
                job.loss.replans += 1
                job.loss.salvaged_chunks += len(decoder.fed)
                return self._rounds_of(decoder.pending, per_round)
            except CodingError:
                pass
        if not allow_restart:
            return None
        if len(candidates) >= k:
            decoder.restart(candidates[:k])
            job.loss.fresh_restarts += 1
            return self._rounds_of(decoder.pending, per_round)
        return None

    # ----------------------------------------------------------- repair reads
    async def _read_survivor(
        self,
        job: _Job,
        stripe: Stripe,
        si: int,
        shard_idx: int,
        not_before: float,
        forced: bool = False,
    ) -> Tuple[np.ndarray, float]:
        """One gated repair read; returns (payload, modeled end time).

        Raises :class:`_ShardDead` / :class:`_ShardSlow` exactly like the
        sequential executor's hardened read, but prices the transfer on
        the per-disk modeled channel so concurrent reads on *different*
        disks overlap and reads on the *same* disk serialize.
        """
        server = self.server
        disk_id = stripe.disks[shard_idx]
        if self.overload is not None:
            # Brownout pacing: repair yields spindle time to the front
            # door before any client work is refused. Never skipped — the
            # rebuild still finishes, just slower while the daemon burns.
            pause = self.overload.repair_pause()
            if pause > 0.0:
                await asyncio.sleep(pause)
        tracer = current_tracer()
        read_started = time.monotonic() if tracer.enabled else 0.0
        async with self.gate.read(disk_id, foreground=False):
            end = self._model_transfer(
                job, disk_id, shard_idx, not_before, forced=forced
            )
            try:
                data = await asyncio.to_thread(
                    server.store.get, disk_id, ChunkId(si, shard_idx)
                )
            except (LatentSectorError, ChunkNotFoundError) as exc:
                if isinstance(exc, ChunkChecksumError):
                    job.loss.checksum_failures += 1
                    self.quarantine_chunk(
                        disk_id, si, shard_idx,
                        source="repair", auto_repair=True,
                    )
                raise _ShardDead(shard_idx, exc) from None
            server.disk(disk_id).record_read(data.size)
            if tracer.enabled:
                tracer.complete(
                    "read", f"survivor:s{si}/{shard_idx}", read_started,
                    time.monotonic() - read_started, track="service",
                    domain="wall", stripe=si, shard=shard_idx, disk=disk_id,
                )
            return data, end

    def _model_transfer(
        self,
        job: _Job,
        disk_id: int,
        shard_idx: int,
        not_before: float,
        forced: bool = False,
    ) -> float:
        """Advance the disk's modeled channel by one chunk transfer."""
        server = self.server
        policy = self.config.policy
        penalty = 0.0
        attempt = 0
        while True:
            if self._injector is not None:
                self._injector.advance(self.modeled_now)  # may raise SimulatedCrash
            disk = server.disk(disk_id)
            if disk.is_failed:
                raise _ShardDead(
                    shard_idx, DiskFailedError(f"disk {disk_id} failed")
                )
            duration = disk.transfer_time(server.config.chunk_size, jittered=False)
            if policy is None or forced:
                break
            if (
                policy.hedge
                and policy.hedge_threshold_seconds is not None
                and duration > policy.hedge_threshold_seconds
            ):
                raise _ShardSlow(shard_idx)
            if policy.timeout_seconds is None or duration <= policy.timeout_seconds:
                break
            job.loss.timeouts += 1
            penalty += policy.timeout_seconds
            if attempt >= policy.max_retries:
                if policy.hedge:
                    raise _ShardSlow(shard_idx)
                break  # force through at degraded speed
            job.loss.retries += 1
            penalty += policy.backoff(attempt)
            attempt += 1
            # let transient windows close before re-checking the disk
            self.modeled_now = max(self.modeled_now, not_before + penalty)
        start = max(self._channels.get(disk_id, 0.0), not_before)
        end = start + penalty + duration
        self._channels[disk_id] = end
        self.modeled_now = max(self.modeled_now, end)
        return end

    # ------------------------------------------------------------ front door
    async def read_chunk(
        self,
        stripe_index: int,
        shard_idx: int,
        deadline: Optional[Deadline] = None,
    ) -> np.ndarray:
        """Client read of one chunk; degrades (and piggybacks) when lost.

        ``deadline`` (if given) is re-checked at every queue hop — doomed
        reads raise :class:`~repro.errors.DeadlineExceededError` instead
        of consuming a disk slot. When overload control is enabled, the
        controller may also refuse the read outright with
        :class:`~repro.errors.OverloadError` (degraded decodes first,
        healthy reads only past the queue cap).
        """
        server = self.server
        stripe = server.layout[stripe_index]
        if not 0 <= shard_idx < stripe.n:
            raise ConfigurationError(f"stripe has no shard {shard_idx}")
        disk_id = stripe.disks[shard_idx]
        cid = ChunkId(stripe_index, shard_idx)
        if deadline is not None:
            deadline.check("admission")
        registry = current_registry()
        registry.counter(FOREGROUND_READS, "front-door reads served").inc()
        started = time.monotonic()
        if (
            not server.disk(disk_id).is_failed
            and server.store.contains(disk_id, cid)
            and not self.is_quarantined(disk_id, cid)
        ):
            if self.overload is not None:
                self.overload.admit(
                    CLASS_READ, queue_depth=self.gate.queue_depth(disk_id)
                )
            corrupt = False
            async with self.gate.read(disk_id, foreground=True, deadline=deadline):
                try:
                    data = await asyncio.to_thread(server.store.get, disk_id, cid)
                except ChunkChecksumError:
                    # The verified read caught silent corruption before any
                    # bytes escaped: quarantine, kick off the read-repair,
                    # and fall through to the degraded path below.
                    corrupt = True
            if not corrupt:
                self._observe_read(registry, "healthy", started)
                return data
            self.quarantine_chunk(
                disk_id, stripe_index, shard_idx,
                source="foreground", auto_repair=True,
            )

        if self.overload is not None:
            self.overload.admit(CLASS_DEGRADED)
        degraded = registry.counter(
            DEGRADED_READS, "front-door reads of lost chunks"
        )
        tracer = current_tracer()
        fut = self._repair_futures.get(stripe_index)
        if fut is not None:
            if tracer.enabled:
                with tracer.span(
                    "wait", f"piggyback:{stripe_index}", track="service",
                    stripe=stripe_index, shard=shard_idx,
                ):
                    results = await self._await_piggyback(fut, deadline)
            else:
                results = await self._await_piggyback(fut, deadline)
            if results is not None and shard_idx in results:
                degraded.labels(source="piggyback").inc()
                self._observe_read(registry, "piggyback", started)
                return results[shard_idx]
        degraded.labels(source="decode").inc()
        if tracer.enabled:
            with tracer.span(
                "decode", f"degraded:{stripe_index}/{shard_idx}",
                track="service", stripe=stripe_index, shard=shard_idx,
            ):
                data = await self._degraded_decode(
                    stripe_index, stripe, shard_idx, deadline
                )
        else:
            data = await self._degraded_decode(
                stripe_index, stripe, shard_idx, deadline
            )
        self._observe_read(registry, "decode", started)
        return data

    @staticmethod
    async def _await_piggyback(fut: "asyncio.Future", deadline: Optional[Deadline]):
        """Wait on a repair's decode future, bounded by the deadline.

        Shielded either way: a reader giving up must never cancel the
        repair's shared future.
        """
        if deadline is None:
            return await asyncio.shield(fut)
        try:
            return await asyncio.wait_for(
                asyncio.shield(fut), timeout=deadline.remaining()
            )
        except asyncio.TimeoutError:
            deadline.check("piggyback")
            raise  # not expired after all (clock nudge): surface the timeout

    def _observe_read(self, registry, path: str, started: float) -> None:
        """Record one front-door read's wall latency into the P² summary."""
        registry.summary(
            READ_LATENCY, "front-door read wall latency",
            quantiles=READ_LATENCY_QUANTILES,
        ).labels(path=path).observe(time.monotonic() - started)

    async def _degraded_decode(
        self,
        stripe_index: int,
        stripe: Stripe,
        shard_idx: int,
        deadline: Optional[Deadline] = None,
    ) -> np.ndarray:
        """Standalone k-survivor decode of one lost chunk (no repair to join).

        A survivor that fails its CRC32C verify mid-decode is quarantined
        and surfaced as a structured, retryable
        :class:`~repro.errors.ChunkQuarantinedError` — never fed into the
        decode (which would produce a silently wrong answer). The retry
        plans around the quarantined survivor, whose read-repair is
        already in flight.
        """
        server = self.server
        failed = server.failed_disks()
        survivors = [
            s
            for s in stripe.surviving_shards(failed)
            if s != shard_idx
            and server.store.contains(stripe.disks[s], ChunkId(stripe_index, s))
            and not self.is_quarantined(stripe.disks[s], ChunkId(stripe_index, s))
        ][: stripe.k]
        if len(survivors) < stripe.k:
            raise InsufficientShardsError(
                f"stripe {stripe_index}: {len(survivors)} readable shards < k"
            )
        decoder = PartialDecoder(
            server.code, survivors, [shard_idx], chunk_size=server.config.chunk_size
        )

        async def fetch(s: int) -> Tuple[int, np.ndarray]:
            d = stripe.disks[s]
            async with self.gate.read(d, foreground=True, deadline=deadline):
                try:
                    return s, await asyncio.to_thread(
                        server.store.get, d, ChunkId(stripe_index, s)
                    )
                except ChunkChecksumError:
                    self.quarantine_chunk(
                        d, stripe_index, s, source="degraded", auto_repair=True
                    )
                    raise ChunkQuarantinedError(
                        f"survivor shard {s} of stripe {stripe_index} failed "
                        "verification during degraded decode",
                        disk=d, stripe=stripe_index, shard=s,
                    ) from None

        reads = await asyncio.gather(*(fetch(s) for s in survivors))
        await asyncio.to_thread(decoder.feed, dict(reads))
        return decoder.result(shard_idx)

    async def read_object(
        self, stripe_index: int, deadline: Optional[Deadline] = None
    ) -> bytes:
        """Read one stored object back through the front door."""
        server = self.server
        size = server.volume_sizes.get(stripe_index)
        if size is None:
            raise StorageError(f"stripe {stripe_index} holds no object data")
        k = server.layout[stripe_index].k
        datas = await asyncio.gather(
            *(self.read_chunk(stripe_index, j, deadline=deadline) for j in range(k))
        )
        return server.code.join(list(datas), size)
