"""Per-disk read admission: bounded concurrency, foreground first.

A high-density chassis dies by seeking: letting every repair task hit the
same spindle concurrently turns sequential recovery reads into random I/O.
:class:`DiskGate` bounds in-flight reads per disk with one semaphore per
spindle, and adds a single priority rule — a waiting *foreground* (client)
read parks new *background* (repair) admissions for its disk until it gets
a slot. Repairs soak up whatever concurrency is left over; user latency is
not taxed by the rebuild.

Admission wait is recorded per priority class into the ambient metrics
registry (``hdpsr_service_admission_wait_seconds``), which is how the
benchmark suite shows what repair pressure does to the front door.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import AsyncIterator, Dict

from repro.errors import ConfigurationError
from repro.obs.context import current_registry

#: Histogram of seconds spent waiting for a read slot, labelled by priority.
ADMISSION_WAIT = "hdpsr_service_admission_wait_seconds"


class DiskGate:
    """Per-disk read-concurrency semaphores with foreground priority.

    Args:
        width: maximum concurrent reads per disk.
    """

    def __init__(self, width: int = 2) -> None:
        if width < 1:
            raise ConfigurationError(f"gate width must be >= 1, got {width}")
        self.width = width
        self._sems: Dict[int, asyncio.Semaphore] = {}
        #: Foreground reads currently waiting, per disk.
        self._fg_waiting: Dict[int, int] = {}
        #: Set when a disk has no foreground waiters (background may enter).
        self._fg_clear: Dict[int, asyncio.Event] = {}

    def _sem(self, disk_id: int) -> asyncio.Semaphore:
        sem = self._sems.get(disk_id)
        if sem is None:
            sem = self._sems[disk_id] = asyncio.Semaphore(self.width)
        return sem

    def _clear_event(self, disk_id: int) -> asyncio.Event:
        event = self._fg_clear.get(disk_id)
        if event is None:
            event = self._fg_clear[disk_id] = asyncio.Event()
            event.set()
        return event

    def waiting(self, disk_id: int) -> int:
        """Foreground reads currently queued on ``disk_id``."""
        return self._fg_waiting.get(disk_id, 0)

    @contextlib.asynccontextmanager
    async def read(
        self, disk_id: int, foreground: bool = False
    ) -> AsyncIterator[None]:
        """Hold one read slot on ``disk_id`` for the body of the block."""
        sem = self._sem(disk_id)
        event = self._clear_event(disk_id)
        started = time.monotonic()
        if foreground:
            self._fg_waiting[disk_id] = self._fg_waiting.get(disk_id, 0) + 1
            event.clear()
            try:
                await sem.acquire()
            finally:
                self._fg_waiting[disk_id] -= 1
                if self._fg_waiting[disk_id] == 0:
                    event.set()
        else:
            # Background defers to any queued foreground read: wait for the
            # disk's foreground queue to drain before competing for a slot.
            while not event.is_set():
                await event.wait()
            await sem.acquire()
        current_registry().histogram(
            ADMISSION_WAIT, "seconds a read waited for a per-disk slot"
        ).labels(priority="foreground" if foreground else "background").observe(
            time.monotonic() - started
        )
        try:
            yield
        finally:
            sem.release()
