"""Per-disk read admission: bounded concurrency, foreground first.

A high-density chassis dies by seeking: letting every repair task hit the
same spindle concurrently turns sequential recovery reads into random I/O.
:class:`DiskGate` bounds in-flight reads per disk with one semaphore per
spindle, and adds a single priority rule — a waiting *foreground* (client)
read parks new *background* (repair) admissions for its disk until it gets
a slot. Repairs soak up whatever concurrency is left over; user latency is
not taxed by the rebuild.

Admission wait is recorded per priority class into the ambient metrics
registry (``hdpsr_service_admission_wait_seconds``), which is how the
benchmark suite shows what repair pressure does to the front door. The
gate is also a live scrape surface: per-disk occupancy and queue-depth
gauges (``hdpsr_service_gate_inflight`` / ``hdpsr_service_gate_waiting``)
update as reads enter and leave, :meth:`DiskGate.depths` snapshots them
for the ``stats`` verb, and — when a tracer is recording — every admission
wait emits a ``wait`` span stamped with the requesting span context, so a
slow client read shows *which disk's* gate it queued on and for how long.

The gate is also where overload control taps in. Every admission wait is
reported to the optional :attr:`DiskGate.controller` (a
:class:`~repro.service.overload.OverloadController`), which runs
CoDel-style windows over the *minimum* wait per disk to distinguish a
standing queue from a transient burst. Reads carrying a
:class:`~repro.service.overload.Deadline` stop waiting the moment their
budget expires — a doomed request must not ride out the queue just to
occupy a slot its client already gave up on.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import TYPE_CHECKING, AsyncIterator, Dict, Optional

from repro.errors import ConfigurationError, DeadlineExceededError
from repro.obs.context import current_registry, current_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.service.overload import Deadline, OverloadController

#: Histogram of seconds spent waiting for a read slot, labelled by priority.
ADMISSION_WAIT = "hdpsr_service_admission_wait_seconds"
#: Gauge: reads currently holding a slot, per disk.
GATE_INFLIGHT = "hdpsr_service_gate_inflight"
#: Gauge: reads currently queued for a slot, per disk and priority.
GATE_WAITING = "hdpsr_service_gate_waiting"


class DiskGate:
    """Per-disk read-concurrency semaphores with foreground priority.

    Args:
        width: maximum concurrent reads per disk.
    """

    def __init__(self, width: int = 2) -> None:
        if width < 1:
            raise ConfigurationError(f"gate width must be >= 1, got {width}")
        self.width = width
        self._sems: Dict[int, asyncio.Semaphore] = {}
        #: Reads currently holding a slot, per disk.
        self._inflight: Dict[int, int] = {}
        #: Reads currently queued, per (disk, foreground?).
        self._waiting: Dict[int, int] = {}
        self._bg_waiting: Dict[int, int] = {}
        #: Foreground reads currently waiting, per disk (priority rule).
        self._fg_waiting: Dict[int, int] = {}
        #: Set when a disk has no foreground waiters (background may enter).
        self._fg_clear: Dict[int, asyncio.Event] = {}
        #: Optional overload controller fed every admission wait.
        self.controller: Optional["OverloadController"] = None

    def _sem(self, disk_id: int) -> asyncio.Semaphore:
        sem = self._sems.get(disk_id)
        if sem is None:
            sem = self._sems[disk_id] = asyncio.Semaphore(self.width)
        return sem

    def _clear_event(self, disk_id: int) -> asyncio.Event:
        event = self._fg_clear.get(disk_id)
        if event is None:
            event = self._fg_clear[disk_id] = asyncio.Event()
            event.set()
        return event

    def waiting(self, disk_id: int) -> int:
        """Foreground reads currently queued on ``disk_id``."""
        return self._fg_waiting.get(disk_id, 0)

    def inflight(self, disk_id: int) -> int:
        """Reads currently holding a slot on ``disk_id``."""
        return self._inflight.get(disk_id, 0)

    def queue_depth(self, disk_id: int) -> int:
        """Total reads (both classes) queued on ``disk_id``."""
        return self._fg_waiting.get(disk_id, 0) + self._bg_waiting.get(disk_id, 0)

    def total_waiting(self) -> int:
        """Total reads queued across every disk (the controller's backstop)."""
        return sum(self._fg_waiting.values()) + sum(self._bg_waiting.values())

    def depths(self) -> Dict[int, Dict[str, int]]:
        """Live per-disk gate state for the ``stats`` verb / ``hdpsr top``.

        Only disks that have ever seen a read appear; each entry reports
        slot occupancy and queued readers by priority class.
        """
        disks = set(self._sems)
        out: Dict[int, Dict[str, int]] = {}
        for disk_id in sorted(disks):
            out[disk_id] = {
                "width": self.width,
                "inflight": self._inflight.get(disk_id, 0),
                "waiting_foreground": self._fg_waiting.get(disk_id, 0),
                "waiting_background": self._bg_waiting.get(disk_id, 0),
            }
        return out

    async def _acquire_background(
        self, sem: asyncio.Semaphore, event: asyncio.Event
    ) -> None:
        # Background defers to any queued foreground read: wait for the
        # disk's foreground queue to drain before competing.
        while not event.is_set():
            await event.wait()
        await sem.acquire()

    def _waiting_gauge(self, disk_id: int, foreground: bool):
        return current_registry().gauge(
            GATE_WAITING, "reads queued for a per-disk slot"
        ).labels(disk=str(disk_id),
                 priority="foreground" if foreground else "background")

    def _inflight_gauge(self, disk_id: int):
        return current_registry().gauge(
            GATE_INFLIGHT, "reads holding a per-disk slot"
        ).labels(disk=str(disk_id))

    @contextlib.asynccontextmanager
    async def read(
        self,
        disk_id: int,
        foreground: bool = False,
        deadline: Optional["Deadline"] = None,
    ) -> AsyncIterator[None]:
        """Hold one read slot on ``disk_id`` for the body of the block.

        When ``deadline`` is given, the wait for a slot is bounded by the
        request's remaining budget: an expired request raises
        :class:`~repro.errors.DeadlineExceededError` (hop ``"gate"``)
        instead of taking a slot it can no longer use in time.
        """
        sem = self._sem(disk_id)
        event = self._clear_event(disk_id)
        if deadline is not None:
            deadline.check("gate")
        waiting_gauge = self._waiting_gauge(disk_id, foreground)
        started = time.monotonic()
        waiting_gauge.inc()
        if foreground:
            self._fg_waiting[disk_id] = self._fg_waiting.get(disk_id, 0) + 1
            event.clear()
        else:
            self._bg_waiting[disk_id] = self._bg_waiting.get(disk_id, 0) + 1
        try:
            if foreground:
                pending = sem.acquire()
            else:
                pending = self._acquire_background(sem, event)
            if deadline is None:
                await pending
            else:
                try:
                    await asyncio.wait_for(pending, timeout=deadline.remaining())
                except asyncio.TimeoutError:
                    deadline.check("gate")  # raises once the budget is spent
                    raise DeadlineExceededError(
                        "gate wait timed out at the deadline", hop="gate"
                    ) from None
        finally:
            if foreground:
                self._fg_waiting[disk_id] -= 1
                if self._fg_waiting[disk_id] == 0:
                    event.set()
            else:
                self._bg_waiting[disk_id] -= 1
            waiting_gauge.dec()
        waited = time.monotonic() - started
        if self.controller is not None:
            self.controller.observe_wait(disk_id, waited)
        priority = "foreground" if foreground else "background"
        current_registry().histogram(
            ADMISSION_WAIT, "seconds a read waited for a per-disk slot"
        ).labels(priority=priority).observe(waited)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.complete(
                "wait", f"gate:disk-{disk_id}", started, waited,
                track="gate", domain="wall", disk=disk_id, priority=priority,
            )
        self._inflight[disk_id] = self._inflight.get(disk_id, 0) + 1
        inflight_gauge = self._inflight_gauge(disk_id)
        inflight_gauge.inc()
        try:
            yield
        finally:
            self._inflight[disk_id] -= 1
            inflight_gauge.dec()
            sem.release()
