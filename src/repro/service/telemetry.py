"""Live scrape surface for the repair daemon: stats, /metrics, /healthz.

Two front doors onto the same ambient metrics registry:

* :func:`stats_snapshot` builds the structured dict behind the daemon's
  ``stats`` verb and ``hdpsr top`` — per-job repair progress with ETAs,
  per-disk gate occupancy/queue depth, shard-writer backlog, event-loop
  health, journal volume, and foreground read-latency percentiles from
  the P² summaries. It *reads* live state (gauges are refreshed from the
  service at snapshot time), so scraping has no steady-state cost.
* :class:`TelemetryServer` is an optional plain-HTTP listener speaking
  just enough HTTP/1.0 for ``curl`` and a Prometheus scraper: ``GET
  /metrics`` renders the registry as text exposition, ``GET /healthz``
  answers 200 once the daemon is serving (503 while starting or
  draining) — the readiness flip is driven by
  :meth:`~repro.service.netserver.ServiceDaemon.serve_until_stopped`.

No HTTP framework: the handler reads one request head, answers, and
closes, which is all a scrape loop needs and keeps the daemon's
dependency surface at zero.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.journal.journal import (
    JOURNAL_BYTES,
    JOURNAL_COMMITS,
    JOURNAL_RECORDS,
)
from repro.obs.context import current_registry
from repro.obs.exporters import prometheus_text
from repro.obs.metrics import MetricsRegistry, Summary
from repro.obs.runtime import EventLoopMonitor
from repro.service.service import (
    READ_LATENCY,
    READ_LATENCY_QUANTILES,
    RepairService,
)

#: Gauge: fraction of a repair job's stripes rebuilt, per disk.
JOB_PROGRESS = "hdpsr_service_job_progress_ratio"
#: Gauge: stripes rebuilt so far, per repair job.
JOB_STRIPES_DONE = "hdpsr_service_job_stripes_done"
#: Gauge: chunks enqueued to the shard writer but not yet persisted.
WRITER_BACKLOG = "hdpsr_service_writer_backlog"


def _counter_value(registry: MetricsRegistry, name: str) -> float:
    metric = registry.get(name)
    if metric is None:
        return 0.0
    return float(sum(m.value for _, m in metric._series()))


def _read_percentiles(registry: MetricsRegistry) -> Dict[str, Dict[str, float]]:
    """Foreground latency percentiles per path (healthy/piggyback/decode)."""
    metric = registry.get(READ_LATENCY)
    if not isinstance(metric, Summary):
        return {}
    out: Dict[str, Dict[str, float]] = {}
    for labels, series in metric._series():
        if series.count == 0:
            continue
        path = dict(labels).get("path", "all")
        entry = {"count": float(series.count), "sum": float(series.sum)}
        for q, est in series.quantiles().items():
            key = "p" + format(q * 100, "g").replace(".", "")
            entry[key] = est
        out[path] = entry
    return out


def stats_snapshot(
    service: RepairService,
    monitor: Optional[EventLoopMonitor] = None,
    cluster=None,
    scrubber=None,
) -> dict:
    """One coherent telemetry snapshot of a live :class:`RepairService`.

    Refreshes the scrape-time gauges (job progress, writer backlog) as a
    side effect so an external ``/metrics`` scrape and a ``stats`` call
    agree on what they saw.
    """
    registry = current_registry()
    jobs = service.progress()
    progress_gauge = registry.gauge(
        JOB_PROGRESS, "fraction of a repair job's stripes rebuilt"
    )
    done_gauge = registry.gauge(
        JOB_STRIPES_DONE, "stripes rebuilt so far per repair job"
    )
    for job in jobs:
        labels = {"disk": str(job["disk"]), "job": str(job["job_id"])}
        total = job["stripes_total"]
        ratio = job["stripes_done"] / total if total else 1.0
        progress_gauge.labels(**labels).set(ratio)
        done_gauge.labels(**labels).set(job["stripes_done"])
    backlog = service.writer.backlog()
    registry.gauge(
        WRITER_BACKLOG, "chunks enqueued but not yet persisted"
    ).set(backlog)
    snap = {
        "modeled_now": service.modeled_now,
        "chunks_enqueued": service.writer.chunks_enqueued,
        "writer_backlog": backlog,
        "failed": service.server.failed_disks(),
        "jobs": jobs,
        "gates": {str(d): v for d, v in service.gate.depths().items()},
        "foreground": _read_percentiles(registry),
        "journal": {
            "records": _counter_value(registry, JOURNAL_RECORDS),
            "commits": _counter_value(registry, JOURNAL_COMMITS),
            "bytes": _counter_value(registry, JOURNAL_BYTES),
        },
        "read_quantiles": list(READ_LATENCY_QUANTILES),
        "store": {
            "swept_tmp_files": int(
                getattr(service.server.store, "swept_tmp_files", 0)
            ),
            "orphan_sidecars": int(
                getattr(service.server.store, "orphan_sidecars", 0)
            ),
        },
        "corruption": {
            "found": service.corrupt_found,
            "repaired": service.corrupt_repaired,
            "quarantined": len(service.quarantine),
        },
    }
    if service.overload is not None:
        # Refreshing also re-exports the overload-state gauge, so an HTTP
        # scrape sees the current brownout level without a request shed.
        snap["overload"] = service.overload.snapshot()
    if monitor is not None:
        snap["runtime"] = monitor.snapshot()
    if cluster is not None:
        # Refreshing also re-exports the lease-epoch / owned-shard gauges,
        # so an HTTP scrape sees current ownership without a heartbeat.
        cluster._export_gauges()
        snap["cluster"] = cluster.status()
    if scrubber is not None:
        # status() re-exports the progress/ETA/state gauges as it reads.
        snap["scrub"] = scrubber.status().to_dict()
    return snap


class TelemetryServer:
    """Plain-HTTP ``/metrics`` + ``/healthz`` listener for one daemon.

    Args:
        host: listen address.
        port: listen port (0 picks an ephemeral one).
        port_file: when set, the actual bound port is written here once
            listening (same discovery contract as the daemon itself).
        registry: metrics registry to render; defaults to the ambient
            one at scrape time.

    The owning daemon assigns :attr:`refresh` (usually a bound
    :func:`stats_snapshot`) so an HTTP scrape re-reads the scrape-time
    gauges — job progress, writer backlog — exactly like a ``stats``
    call would; without it ``/metrics`` shows them only after the first
    ``stats``/``top`` request materializes them.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        port_file: "str | Path | None" = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.port_file = Path(port_file) if port_file else None
        self._registry = registry
        self._listener: Optional[asyncio.AbstractServer] = None
        self.ready = False
        self.refresh: Optional[Callable[[], object]] = None

    def set_ready(self, ready: bool) -> None:
        """Flip ``/healthz`` between 200 (serving) and 503 (not yet/draining)."""
        self.ready = ready

    async def start(self) -> int:
        """Bind the listener (idempotent); returns the actual port."""
        if self._listener is not None:
            return self.port
        self._listener = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._listener.sockets[0].getsockname()[1]
        if self.port_file is not None:
            self.port_file.parent.mkdir(parents=True, exist_ok=True)
            self.port_file.write_text(str(self.port))
        return self.port

    async def stop(self) -> None:
        if self._listener is None:
            return
        self._listener.close()
        try:
            await asyncio.wait_for(self._listener.wait_closed(), timeout=2.0)
        except asyncio.TimeoutError:
            pass
        self._listener = None

    # ------------------------------------------------------------------ http
    def _respond(self, status: str, body: str, content_type: str) -> bytes:
        payload = body.encode()
        head = (
            f"HTTP/1.0 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        return head.encode() + payload

    def _route(self, method: str, path: str) -> bytes:
        if method != "GET":
            return self._respond("405 Method Not Allowed", "GET only\n", "text/plain")
        if path == "/healthz":
            if self.ready:
                return self._respond("200 OK", "ok\n", "text/plain")
            return self._respond("503 Service Unavailable", "starting\n", "text/plain")
        if path == "/metrics":
            if self.refresh is not None:
                self.refresh()
            registry = self._registry or current_registry()
            return self._respond(
                "200 OK", prometheus_text(registry),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        return self._respond("404 Not Found", f"no route {path}\n", "text/plain")

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request.decode("ascii", "replace").split()
            if len(parts) >= 2:
                # drain headers so well-behaved clients see a clean close
                while True:
                    line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                    if line in (b"", b"\r\n", b"\n"):
                        break
                writer.write(self._route(parts[0], parts[1]))
                await writer.drain()
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
