"""Multi-daemon cluster plane: shard leases, failure detection, handoff.

N ``hdpsr serve`` daemons share one :class:`~repro.hdss.store.ShardedChunkStore`
by partitioning its shards among themselves. Ownership is recorded in
**epoch-stamped, file-based leases** — one fsync'd record per shard under
``<cluster root>/leases/``, framed and checksummed exactly like journal
records (:mod:`repro.journal.wal`), so a torn lease write is indistinguishable
from no write at all. The shared filesystem is the only coordination
medium: there is no leader and no network consensus, just atomic renames.

The moving parts:

* :class:`ClusterClock` — wall time plus an injectable skew, so the
  ``clock_skew`` fault kind (and tests) can push one daemon's view of
  lease expiry around without touching the others.
* :class:`LeaseStore` — read/write one lease record per shard via
  tmp + fsync + atomic rename, guarded by an ``O_EXCL`` lockfile per
  shard so read-modify-write cycles (renew, claim) never lose updates.
* :class:`HashRing` — rendezvous hashing (highest CRC32C score wins) from
  shard index to a deterministic preference order over node ids. Failover
  targets are therefore reproducible: with two daemons, the survivor of a
  crash is always the same for a given shard.
* :class:`ClusterNode` — the per-daemon agent: publishes a heartbeat
  record, renews owned leases, detects dead peers (heartbeat lapse +
  lease expiry), claims their shards with a bumped epoch, and triggers
  the journal-handoff callback so the survivor resumes the dead peer's
  repairs byte-identically.

**Epoch fencing.** Every claim increments the shard's epoch. A daemon
that pauses (GC, overload, partition) past its lease TTL may revive
believing it still owns a shard; before any journal commit or chunk
write-back it must call :meth:`ClusterNode.check_fence`, which re-reads
the lease file and raises :class:`~repro.errors.FencedError` when the
on-disk owner or epoch has moved on. Stale owners can therefore never
clobber the survivor's writes — the split-brain window is closed at the
commit point, not at detection time.

Ownership is *sticky*: leases only change hands on expiry. A revived
node rejoins with zero shards and simply serves reads until something
expires in its favor.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FencedError, LeaseError
from repro.journal.wal import WALRecord, decode_stream, encode_record
from repro.obs.context import current_registry
from repro.utils.checksum import crc32c

#: Record types inside lease / presence files.
LEASE_RECORD = "lease"
NODE_RECORD = "node"

#: Epoch value meaning "never owned" (first claim writes epoch 1).
NO_EPOCH = 0


class ClusterClock:
    """Wall clock with an injectable skew, one per daemon.

    Lease expiry must be comparable *across processes*, so the base is
    real wall time by default — but both the chaos harness (``clock_skew``
    fault) and the unit tests need to move one daemon's clock without
    waiting, hence the additive ``skew`` and the pluggable ``base``
    (pass ``lambda: t`` for a fully manual clock).
    """

    def __init__(self, base: Optional[Callable[[], float]] = None) -> None:
        self._base = base or time.time
        self.skew = 0.0

    def now(self) -> float:
        return self._base() + self.skew

    def advance(self, seconds: float) -> None:
        """Shift this clock by ``seconds`` (negative moves it back)."""
        self.skew += seconds


@dataclass(frozen=True)
class LeaseRecord:
    """One shard's ownership record.

    ``epoch`` increments on every change of owner and never decreases;
    renewals by the same owner keep it. ``expires_at`` is absolute wall
    time — past it the lease is *expired* and any preferred live node may
    claim the shard (with ``epoch + 1``).
    """

    shard: int
    owner: str
    endpoint: str
    epoch: int
    expires_at: float
    renewed_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def to_meta(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "owner": self.owner,
            "endpoint": self.endpoint,
            "epoch": self.epoch,
            "expires_at": self.expires_at,
            "renewed_at": self.renewed_at,
        }

    @classmethod
    def from_meta(cls, meta: Dict[str, object]) -> "LeaseRecord":
        try:
            return cls(
                shard=int(meta["shard"]),
                owner=str(meta["owner"]),
                endpoint=str(meta["endpoint"]),
                epoch=int(meta["epoch"]),
                expires_at=float(meta["expires_at"]),
                renewed_at=float(meta["renewed_at"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LeaseError(f"malformed lease record: {meta!r} ({exc})") from None


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_record_atomic(path: Path, record: WALRecord, *, durable: bool) -> None:
    """Write one WAL-framed record as the whole file, crash-atomically."""
    tmp = path.parent / f"{path.name}.{os.getpid()}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(encode_record(record))
        if durable:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if durable:
        _fsync_dir(path.parent)


def _read_record(path: Path, expected_type: str) -> Optional[WALRecord]:
    """First intact record of ``path``, or None (missing/torn/corrupt)."""
    try:
        fh = open(path, "rb")
    except OSError:
        return None
    with fh:
        for record in decode_stream(fh):
            if record.type == expected_type:
                return record
            return None
    return None


class LeaseStore:
    """Per-shard lease records on a shared directory.

    Layout::

        root/leases/shard-00.lease   one CRC32C-framed LeaseRecord each
        root/leases/shard-00.lock    O_EXCL lockfile for read-modify-write
        root/nodes/<node>.node       per-node heartbeat (presence) record

    A lease file is replaced wholesale on every renew/claim (tmp + fsync +
    rename), so readers see either the old record or the new one, never a
    blend; the CRC catches torn tails if the filesystem lies. The lockfile
    serializes the read-decide-write cycle between daemons — without it a
    reviving stale owner's renewal could overwrite a claimant's epoch bump
    (the classic lost update behind split-brain). Stale locks (a holder
    that died mid-cycle) are broken after ``lock_stale_after`` seconds.
    """

    def __init__(
        self,
        root: "str | os.PathLike",
        *,
        durable: bool = True,
        lock_stale_after: float = 5.0,
    ) -> None:
        self.root = Path(root)
        self.lease_dir = self.root / "leases"
        self.node_dir = self.root / "nodes"
        self.lease_dir.mkdir(parents=True, exist_ok=True)
        self.node_dir.mkdir(parents=True, exist_ok=True)
        self.durable = durable
        self.lock_stale_after = lock_stale_after

    # ----------------------------------------------------------------- leases
    def _lease_path(self, shard: int) -> Path:
        return self.lease_dir / f"shard-{shard:02d}.lease"

    def _lock_path(self, shard: int) -> Path:
        return self.lease_dir / f"shard-{shard:02d}.lock"

    def read(self, shard: int) -> Optional[LeaseRecord]:
        """The shard's current lease, or None if absent/torn."""
        record = _read_record(self._lease_path(shard), LEASE_RECORD)
        if record is None:
            return None
        lease = LeaseRecord.from_meta(record.meta)
        if lease.shard != shard:
            raise LeaseError(
                f"lease file for shard {shard} names shard {lease.shard}"
            )
        return lease

    def write(self, lease: LeaseRecord) -> None:
        """Replace the shard's lease record (call under :meth:`lock`)."""
        _write_record_atomic(
            self._lease_path(lease.shard),
            WALRecord(type=LEASE_RECORD, meta=lease.to_meta()),
            durable=self.durable,
        )

    def lock(self, shard: int) -> "_ShardLock":
        """Context manager serializing one shard's read-modify-write."""
        return _ShardLock(self._lock_path(shard), self.lock_stale_after)

    # --------------------------------------------------------------- presence
    def _node_path(self, node: str) -> Path:
        return self.node_dir / f"{node}.node"

    def publish_node(
        self, node: str, endpoint: str, alive_until: float, now: float
    ) -> None:
        """Write this node's heartbeat record (atomic replace)."""
        _write_record_atomic(
            self._node_path(node),
            WALRecord(
                type=NODE_RECORD,
                meta={
                    "node": node,
                    "endpoint": endpoint,
                    "alive_until": alive_until,
                    "renewed_at": now,
                },
            ),
            durable=self.durable,
        )

    def nodes(self) -> Dict[str, Dict[str, object]]:
        """All published node records, keyed by node id (torn ones skipped)."""
        out: Dict[str, Dict[str, object]] = {}
        for path in sorted(self.node_dir.glob("*.node")):
            record = _read_record(path, NODE_RECORD)
            if record is not None:
                out[str(record.meta.get("node", path.stem))] = record.meta
        return out

    def live_nodes(self, now: float) -> Dict[str, str]:
        """node id -> endpoint for every node whose heartbeat is current."""
        return {
            node: str(meta.get("endpoint", ""))
            for node, meta in self.nodes().items()
            if float(meta.get("alive_until", 0.0)) > now
        }


class _ShardLock:
    """``O_CREAT|O_EXCL`` lockfile with stale-holder breaking.

    Lock cycles are a few syscalls long, so contention is resolved by a
    short bounded spin; a lockfile older than ``stale_after`` means its
    holder died between acquire and release and is removed.
    """

    def __init__(self, path: Path, stale_after: float) -> None:
        self.path = path
        self.stale_after = stale_after

    def __enter__(self) -> "_ShardLock":
        deadline = time.monotonic() + max(1.0, 2 * self.stale_after)
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, f"{os.getpid()}\n".encode("ascii"))
                os.close(fd)
                return self
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                    if age > self.stale_after:
                        self.path.unlink(missing_ok=True)
                        continue
                except OSError:
                    continue  # holder released between open and stat
                if time.monotonic() > deadline:
                    raise LeaseError(
                        f"could not acquire shard lock {self.path.name} "
                        f"within {2 * self.stale_after:.1f}s"
                    ) from None
                time.sleep(0.002)

    def __exit__(self, *exc) -> None:
        self.path.unlink(missing_ok=True)


class HashRing:
    """Rendezvous (highest-random-weight) hashing over node ids.

    For each shard, every node gets a CRC32C score of ``"node/shard"``;
    sorting by score yields a deterministic preference order. When a node
    disappears, each of its shards fails over to the next name on *that
    shard's* list — spreading load instead of dumping it on one successor,
    and reproducibly so (the chaos harness depends on knowing the heir).
    """

    @staticmethod
    def score(node: str, shard: int) -> int:
        return crc32c(f"{node}/{shard}".encode("utf-8"))

    @classmethod
    def preference(cls, shard: int, nodes: Sequence[str]) -> List[str]:
        """Node ids for ``shard``, most-preferred first (ties by name)."""
        return sorted(nodes, key=lambda n: (-cls.score(n, shard), n))

    @classmethod
    def owner(cls, shard: int, nodes: Sequence[str]) -> Optional[str]:
        order = cls.preference(shard, nodes)
        return order[0] if order else None


@dataclass(frozen=True)
class ClusterConfig:
    """Static identity + tuning of one daemon's cluster agent.

    Args:
        root: shared cluster directory (leases + node records). Must be
            on the same filesystem for every daemon of the cluster.
        node_id: this daemon's stable name (e.g. ``"node-a"``).
        endpoint: ``host:port`` peers and clients reach this daemon at.
        num_shards: shard count — must equal the shared store's
            ``num_shards`` (disk ``d`` lives on shard ``d % num_shards``).
        lease_ttl: seconds a lease (and heartbeat) stays valid without
            renewal; the failure-detection horizon.
        heartbeat_interval: seconds between renew/scan passes; must be
            comfortably below ``lease_ttl`` (a third or less).
        durable: fsync lease/presence writes (off for pure-sim tests).
    """

    root: str
    node_id: str
    endpoint: str = ""
    num_shards: int = 4
    lease_ttl: float = 2.0
    heartbeat_interval: float = 0.5
    durable: bool = True

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise LeaseError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.lease_ttl <= 0 or self.heartbeat_interval <= 0:
            raise LeaseError("lease_ttl and heartbeat_interval must be > 0")
        if self.heartbeat_interval >= self.lease_ttl:
            raise LeaseError(
                f"heartbeat_interval ({self.heartbeat_interval}) must be < "
                f"lease_ttl ({self.lease_ttl}) or leases expire between renewals"
            )


#: Async callback fired after this node claims a shard from a (dead) peer:
#: ``on_claim(shard, previous_owner)`` — previous owner is None for an
#: initial claim of a never-owned shard.
ClaimCallback = Callable[[int, Optional[str]], Awaitable[None]]


class ClusterNode:
    """One daemon's membership agent over a shared :class:`LeaseStore`.

    Drive it either with :meth:`run` (the daemon's background heartbeat
    loop) or by calling :meth:`tick` directly (tests, single-step chaos
    scenarios). Both are safe to mix — ``tick`` is synchronous except for
    the claim callbacks it schedules.
    """

    def __init__(
        self,
        config: ClusterConfig,
        *,
        clock: Optional[ClusterClock] = None,
        on_claim: Optional[ClaimCallback] = None,
    ) -> None:
        self.config = config
        self.clock = clock or ClusterClock()
        self.on_claim = on_claim
        self.store = LeaseStore(
            config.root,
            durable=config.durable,
            lock_stale_after=max(5.0, 2 * config.lease_ttl),
        )
        #: shard -> epoch this node currently holds.
        self.held: Dict[int, int] = {}
        self.failovers = 0
        self.heartbeat_misses = 0
        self.ticks = 0
        self._last_live: Dict[str, str] = {}
        self._stopped = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._fence_cache: Dict[int, Tuple[float, LeaseRecord]] = {}

    # ------------------------------------------------------------- membership
    @property
    def node_id(self) -> str:
        return self.config.node_id

    @property
    def owned_shards(self) -> List[int]:
        return sorted(self.held)

    def shard_of_disk(self, disk_id: int) -> int:
        """Store shard holding ``disk_id`` (mirrors ShardedChunkStore)."""
        return disk_id % self.config.num_shards

    def owns_disk(self, disk_id: int) -> bool:
        return self.shard_of_disk(disk_id) in self.held

    def owner_of_shard(self, shard: int) -> Optional[LeaseRecord]:
        """Current on-disk lease for ``shard`` (None when unowned)."""
        return self.store.read(shard)

    # ------------------------------------------------------------------ ticks
    async def run(self) -> None:
        """Heartbeat loop: publish presence, renew, scan, claim — forever."""
        self._stopped.clear()
        while not self._stopped.is_set():
            await self.tick_async()
            try:
                await asyncio.wait_for(
                    self._stopped.wait(), timeout=self.config.heartbeat_interval
                )
            except asyncio.TimeoutError:
                pass

    def start(self) -> None:
        """Spawn :meth:`run` on the current event loop."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self.run())

    async def stop(self, *, release: bool = True) -> None:
        """Stop heartbeating. ``release=False`` models a crash: leases are
        left to expire so peers take over only after the TTL."""
        self._stopped.set()
        if self._task is not None:
            try:
                await self._task
            except asyncio.CancelledError:  # pragma: no cover - defensive
                pass
            self._task = None
        if release:
            self.release_all()

    async def tick_async(self) -> List[Tuple[int, Optional[str]]]:
        """One pass, awaiting claim callbacks; returns claims made."""
        claims = self.tick()
        if self.on_claim is not None:
            for shard, prev_owner in claims:
                await self.on_claim(shard, prev_owner)
        return claims

    def tick(self) -> List[Tuple[int, Optional[str]]]:
        """Publish presence, renew held leases, claim expired ones.

        Returns the ``(shard, previous_owner)`` pairs claimed this pass
        (claim callbacks are *not* run — use :meth:`tick_async` for that).
        """
        self.ticks += 1
        now = self.clock.now()
        cfg = self.config
        self.store.publish_node(
            cfg.node_id, cfg.endpoint, now + cfg.lease_ttl, now
        )
        live = self.store.live_nodes(now)
        # Transition-based heartbeat misses: a peer seen live before whose
        # record has now lapsed is one miss (and a takeover candidate).
        for peer in self._last_live:
            if peer != cfg.node_id and peer not in live:
                self.heartbeat_misses += 1
                self._counter(
                    "hdpsr_cluster_heartbeat_misses_total",
                    "Peer heartbeat records found expired.",
                ).inc()
        self._last_live = live
        claims: List[Tuple[int, Optional[str]]] = []
        for shard in range(cfg.num_shards):
            claimed = self._tick_shard(shard, now, live)
            if claimed is not None:
                claims.append(claimed)
        self._export_gauges()
        return claims

    def _tick_shard(
        self, shard: int, now: float, live: Dict[str, str]
    ) -> Optional[Tuple[int, Optional[str]]]:
        cfg = self.config
        lease = self.store.read(shard)
        if lease is not None and lease.owner == cfg.node_id:
            if shard not in self.held:
                # We hold a lease on disk we don't remember — a prior run
                # of this node id. Treat as expired unless still valid.
                self.held[shard] = lease.epoch
            if self.held.get(shard) != lease.epoch:
                # On-disk epoch moved past ours and back to us? Adopt it.
                self.held[shard] = lease.epoch
            with self.store.lock(shard):
                current = self.store.read(shard)
                if (
                    current is None
                    or current.owner != cfg.node_id
                    or current.epoch != self.held.get(shard)
                ):
                    # Lost it between read and lock: demote.
                    self.held.pop(shard, None)
                    self._fence_cache.pop(shard, None)
                    return None
                self.store.write(
                    LeaseRecord(
                        shard=shard,
                        owner=cfg.node_id,
                        endpoint=cfg.endpoint,
                        epoch=current.epoch,
                        expires_at=now + cfg.lease_ttl,
                        renewed_at=now,
                    )
                )
            return None
        if lease is not None and shard in self.held:
            # Someone else owns a shard we thought we held: fenced/demoted.
            self.held.pop(shard, None)
            self._fence_cache.pop(shard, None)
        if lease is not None and not lease.expired(now):
            return None  # live foreign lease — ownership is sticky
        # Unowned or expired: claim only if we are the preferred live node.
        candidates = sorted(set(live) | {cfg.node_id})
        if HashRing.owner(shard, candidates) != cfg.node_id:
            return None
        with self.store.lock(shard):
            current = self.store.read(shard)
            if current is not None and not current.expired(now) and (
                current.owner != cfg.node_id
            ):
                return None  # raced: someone renewed/claimed first
            prev_owner = current.owner if current is not None else None
            epoch = (current.epoch if current is not None else NO_EPOCH) + 1
            self.store.write(
                LeaseRecord(
                    shard=shard,
                    owner=cfg.node_id,
                    endpoint=cfg.endpoint,
                    epoch=epoch,
                    expires_at=now + cfg.lease_ttl,
                    renewed_at=now,
                )
            )
        self.held[shard] = epoch
        self._fence_cache.pop(shard, None)
        if prev_owner is not None and prev_owner != cfg.node_id:
            self.failovers += 1
            self._counter(
                "hdpsr_cluster_failovers_total",
                "Shards claimed from a dead peer.",
            ).inc()
        return (shard, prev_owner if prev_owner != cfg.node_id else None)

    # ---------------------------------------------------------------- fencing
    def check_fence(self, disk_id: int) -> None:
        """Raise :class:`FencedError` unless this node still owns the
        shard holding ``disk_id`` at the epoch it believes it does.

        Re-reads the lease file (with a one-heartbeat cache so per-chunk
        commits don't turn into per-chunk stats), which is what makes a
        revived stale owner fail *at the commit point* even though its
        in-memory state says it owns the shard.
        """
        shard = self.shard_of_disk(disk_id)
        held_epoch = self.held.get(shard)
        if held_epoch is None:
            raise FencedError(
                f"node {self.node_id} does not hold shard {shard} "
                f"(disk {disk_id})",
                shard=shard,
                held_epoch=NO_EPOCH,
                current_epoch=NO_EPOCH,
            )
        now = self.clock.now()
        cached = self._fence_cache.get(shard)
        if cached is not None and now - cached[0] < self.config.heartbeat_interval:
            lease = cached[1]
        else:
            lease = self.store.read(shard)
            if lease is not None:
                self._fence_cache[shard] = (now, lease)
        if lease is None or lease.owner != self.node_id or lease.epoch != held_epoch:
            self.held.pop(shard, None)
            self._fence_cache.pop(shard, None)
            current = lease.epoch if lease is not None else NO_EPOCH
            owner = lease.owner if lease is not None else "<none>"
            raise FencedError(
                f"node {self.node_id} fenced off shard {shard}: held epoch "
                f"{held_epoch}, but {owner} owns it at epoch {current}",
                shard=shard,
                held_epoch=held_epoch,
                current_epoch=current,
            )

    def release_all(self) -> None:
        """Gracefully drop every held lease (clean shutdown, not crash)."""
        now = self.clock.now()
        for shard, epoch in sorted(self.held.items()):
            with self.store.lock(shard):
                current = self.store.read(shard)
                if current is None or current.owner != self.node_id:
                    continue
                self.store.write(
                    LeaseRecord(
                        shard=shard,
                        owner=self.node_id,
                        endpoint=self.config.endpoint,
                        epoch=epoch,
                        expires_at=now,  # instantly claimable
                        renewed_at=now,
                    )
                )
        self.held.clear()
        self._fence_cache.clear()

    # ------------------------------------------------------------------ intro
    def status(self) -> Dict[str, object]:
        """JSON-able snapshot for the ``cluster`` protocol verb / top."""
        now = self.clock.now()
        leases = {}
        for shard in range(self.config.num_shards):
            lease = self.store.read(shard)
            if lease is not None:
                leases[str(shard)] = {
                    "owner": lease.owner,
                    "endpoint": lease.endpoint,
                    "epoch": lease.epoch,
                    "expires_in": round(lease.expires_at - now, 3),
                }
        return {
            "node": self.node_id,
            "endpoint": self.config.endpoint,
            "num_shards": self.config.num_shards,
            "owned_shards": self.owned_shards,
            "epochs": {str(s): e for s, e in sorted(self.held.items())},
            "live_nodes": self.store.live_nodes(now),
            "leases": leases,
            "failovers": self.failovers,
            "heartbeat_misses": self.heartbeat_misses,
            "ticks": self.ticks,
            "clock_skew": self.clock.skew,
        }

    # ---------------------------------------------------------------- metrics
    def _counter(self, name: str, help: str):
        return current_registry().counter(name, help)

    def _export_gauges(self) -> None:
        registry = current_registry()
        registry.gauge(
            "hdpsr_cluster_owned_shards",
            "Shards this daemon currently holds leases for.",
        ).set(len(self.held))
        epoch_gauge = registry.gauge(
            "hdpsr_cluster_lease_epoch",
            "Lease epoch this daemon holds, per shard (0 = not held).",
        )
        for shard in range(self.config.num_shards):
            epoch_gauge.labels(shard=str(shard)).set(
                self.held.get(shard, NO_EPOCH)
            )
