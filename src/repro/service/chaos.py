"""Deterministic two-daemon chaos harness: kill an owner mid-repair.

This is the scenario behind ``hdpsr chaos``. Two :class:`ServiceDaemon`\\ s
share one file-backed :class:`~repro.hdss.store.ShardedChunkStore`, one
journal root, and one lease directory — the full cluster stack of
:mod:`repro.service.cluster` — inside a single process, so the run is
seeded end to end and every assertion is checkable in memory afterwards:

1. Daemon ``a`` claims every shard (first comer), a client fails a disk
   and submits its repair to ``a`` while hammering hedged foreground
   reads through :class:`~repro.service.client.ClusterClient`.
2. A scripted ``daemon_crash`` (rewritten to ``process_crash`` on ``a``'s
   modeled clock by :meth:`~repro.faults.spec.FaultSchedule.for_daemon`)
   kills ``a`` mid-repair. The harness then emulates process death: the
   writer's queued-but-unpersisted chunks are dropped
   (:meth:`~repro.service.sharding.AsyncShardWriter.abort`) and ``a``'s
   leases are left un-released, exactly as a real SIGKILL leaves them.
3. Daemon ``b``'s failure detector notices the missed heartbeats, claims
   the expired leases with a bumped epoch, and — via the daemon's journal
   handoff — resumes ``a``'s repair from its last committed round.
4. The report then proves the invariants the cluster design promises:
   every object is byte-identical to its pre-failure contents, every
   rebuilt chunk's CRC32C sidecar verifies, **no chunk was persisted
   twice** (a :class:`CountingStore` wraps the shared store), foreground
   p99 stayed bounded through the takeover, and the revived stale owner
   is fenced at the commit point (its held epoch lost to ``b``'s).

Determinism: the crash is placed on the *modeled* repair clock, so it
fires at the same stripe boundary every run for a given seed; wall-clock
jitter moves only the takeover latency, never which writes happened.
The shared store counts writes rather than forbidding overlap because a
batch already handed to a store thread at crash time may still land —
the same race a real crash has with the page cache — and the journal
protocol's answer (skip chunks the dead peer persisted, re-derive the
rest) is exactly what the duplicate counter validates.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import ALGORITHMS
from repro.ec.stripe import ChunkId
from repro.errors import ConfigurationError, FencedError
from repro.faults.report import EXIT_CRASHED
from repro.faults.service import ServiceFaultInjector
from repro.faults.spec import FaultEvent, FaultSchedule
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.hdss.store import ChunkStore, InMemoryChunkStore, ShardedChunkStore
from repro.obs.context import current_registry
from repro.obs.quantiles import QuantileSketch
from repro.service.client import BackoffPolicy, ClusterClient, ServiceClient
from repro.service.cluster import ClusterConfig, ClusterNode
from repro.service.netserver import ServiceDaemon
from repro.service.service import RepairService, ServiceConfig

__all__ = ["ChaosConfig", "ChaosScenario", "CountingStore", "run_chaos"]

Key = Tuple[int, ChunkId]


class CountingStore(ChunkStore):
    """Write-count wrapper proving "no chunk was persisted twice".

    Delegates everything to ``inner`` (the shared sharded store) and
    counts each persisted ``(disk, chunk)``. :meth:`reset` is called
    after provisioning so only repair-plane writes are audited;
    foreground reads never write, so any key with count > 1 after the
    scenario is a genuine duplicate write across the two daemons.
    """

    def __init__(self, inner: ChunkStore) -> None:
        self.inner = inner
        self.write_counts: Dict[Key, int] = {}

    def _count(self, disk_id: int, chunk_id: ChunkId) -> None:
        key = (disk_id, chunk_id)
        self.write_counts[key] = self.write_counts.get(key, 0) + 1

    def reset(self) -> None:
        self.write_counts.clear()

    def duplicates(self) -> List[Key]:
        return sorted(k for k, c in self.write_counts.items() if c > 1)

    # ------------------------------------------------------------ delegation
    def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        self._count(disk_id, chunk_id)
        self.inner.put(disk_id, chunk_id, data)

    def put_many(self, items) -> None:
        for disk_id, chunk_id, _ in items:
            self._count(disk_id, chunk_id)
        self.inner.put_many(items)

    def get(self, disk_id: int, chunk_id: ChunkId) -> np.ndarray:
        return self.inner.get(disk_id, chunk_id)

    def get_many(self, keys):
        return self.inner.get_many(keys)

    def delete(self, disk_id: int, chunk_id: ChunkId) -> None:
        self.inner.delete(disk_id, chunk_id)

    def contains(self, disk_id: int, chunk_id: ChunkId) -> bool:
        return self.inner.contains(disk_id, chunk_id)

    def chunks_on_disk(self, disk_id: int) -> List[ChunkId]:
        return self.inner.chunks_on_disk(disk_id)

    def drop_disk(self, disk_id: int) -> int:
        return self.inner.drop_disk(disk_id)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of one chaos run (defaults match the tier-1 test geometry).

    Attributes:
        root: scratch directory (store/journal/cluster live under it).
        crash_at: modeled-clock second at which daemon ``a`` dies; modeled
            repair reads run at microsecond scale, so the default lands
            mid-repair with some stripes journaled and some in flight.
        failed_disk: disk the client fails and repairs (on daemon ``a``).
        lease_ttl / heartbeat_interval: failure-detector timing; the TTL
            bounds the takeover latency the report measures.
        p99_budget: wall-clock bound asserted on foreground read p99 —
            generous against CI jitter while still catching a client that
            waits out a dead daemon instead of hedging.
        extra_events: appended to the ``daemon_crash`` schedule, letting
            callers mix wire faults (``conn_reset``/``slow_peer``…) into
            the same deterministic run.
    """

    root: Path
    num_disks: int = 12
    n: int = 5
    k: int = 3
    chunk_size: int = 2048
    memory_chunks: int = 16
    spares: int = 3
    seed: int = 11
    stripes: int = 12
    num_shards: int = 4
    failed_disk: int = 3
    algorithm: str = "hd-psr-ap"
    crash_at: float = 2.5e-5
    lease_ttl: float = 0.6
    heartbeat_interval: float = 0.15
    hedge_after: float = 0.05
    p99_budget: float = 2.0
    deadline: float = 60.0
    extra_events: Sequence[FaultEvent] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ConfigurationError(f"deadline must be > 0, got {self.deadline}")
        if self.p99_budget <= 0:
            raise ConfigurationError(
                f"p99_budget must be > 0, got {self.p99_budget}"
            )


class ChaosScenario:
    """One seeded kill-the-owner run; :meth:`run` returns the report."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self.failures: List[str] = []
        self._deadline = 0.0

    # ------------------------------------------------------------- assembly
    def _hdss_config(self) -> HDSSConfig:
        c = self.config
        return HDSSConfig(
            num_disks=c.num_disks, n=c.n, k=c.k, chunk_size=c.chunk_size,
            memory_chunks=c.memory_chunks, spares=c.spares, seed=c.seed,
            placement="rotating",
        )

    def _schedule(self) -> FaultSchedule:
        c = self.config
        events = [FaultEvent(at=c.crash_at, kind="daemon_crash", daemon=0)]
        events.extend(c.extra_events)
        return FaultSchedule(events)

    def _build_daemon(
        self, name: str, server: HighDensityStorageServer,
        local: FaultSchedule, wire: FaultSchedule, daemon_idx: int,
    ) -> ServiceDaemon:
        c = self.config
        service = RepairService(
            server,
            ALGORITHMS[c.algorithm](),
            ServiceConfig(
                # One stripe in flight at a time: the crash then cleanly
                # separates journaled stripes from the one mid-decode, so
                # the no-duplicate-write assertion is deterministic.
                max_concurrent_stripes=1,
                journal_root=Path(c.root) / "journal",
                durable_journal=False,
            ),
            faults=local if len(local.events) else None,
        )
        cluster = ClusterNode(ClusterConfig(
            root=Path(c.root) / "cluster",
            node_id=name,
            num_shards=c.num_shards,
            lease_ttl=c.lease_ttl,
            heartbeat_interval=c.heartbeat_interval,
            durable=False,
        ))
        chaos = (
            ServiceFaultInjector(wire, daemon=daemon_idx)
            if len(wire.events) else None
        )
        return ServiceDaemon(service, port=0, cluster=cluster, chaos=chaos)

    # ------------------------------------------------------------- plumbing
    def _fail(self, message: str) -> None:
        self.failures.append(message)

    async def _await(self, predicate, what: str, timeout: float) -> bool:
        """Poll ``predicate`` (sync or async) until true or timed out."""
        deadline = min(time.monotonic() + timeout, self._deadline)
        while time.monotonic() < deadline:
            result = predicate()
            if asyncio.iscoroutine(result):
                result = await result
            if result:
                return True
            await asyncio.sleep(0.02)
        self._fail(f"timed out waiting for {what}")
        return False

    async def _foreground(
        self, client: ClusterClient, server: HighDensityStorageServer,
        stop: asyncio.Event, sketch: QuantileSketch,
    ) -> Dict[str, int]:
        """Hammer hedged reads until told to stop; records wall latency."""
        rng = random.Random(self.config.seed)
        stripes = len(server.layout)
        reads = errors = 0
        while not stop.is_set():
            stripe = rng.randrange(stripes)
            shard = rng.randrange(server.layout[stripe].k)
            t0 = time.monotonic()
            try:
                await client.read_chunk(stripe, shard)
                sketch.observe(time.monotonic() - t0)
                reads += 1
            except Exception:  # noqa: BLE001 - tallied, asserted via p99/count
                errors += 1
                await asyncio.sleep(0.01)
        return {"reads": reads, "errors": errors}

    # ------------------------------------------------------------------ run
    async def run(self) -> dict:
        """Execute the scenario; returns a JSON-able report with ``passed``."""
        c = self.config
        self._deadline = time.monotonic() + c.deadline
        root = Path(c.root)
        schedule = self._schedule()
        local_a, wire_a = schedule.for_daemon(0)
        local_b, wire_b = schedule.for_daemon(1)

        shared = CountingStore(
            ShardedChunkStore.from_root(
                root / "store", num_shards=c.num_shards, durable=False
            )
        )
        server_a = HighDensityStorageServer(self._hdss_config(), store=shared)
        server_a.provision_stripes(c.stripes, with_data=True)
        originals = {
            si: server_a.read_object(si) for si in range(len(server_a.layout))
        }
        # Daemon b fronts the same shared store. Provisioning writes data,
        # so b provisions into a throwaway store (same seed => identical
        # layout, spares, and volume sizes) and is then pointed at the
        # shared one — the in-process stand-in for a second process
        # opening the same directory tree.
        server_b = HighDensityStorageServer(
            self._hdss_config(), store=InMemoryChunkStore()
        )
        server_b.provision_stripes(c.stripes, with_data=True)
        server_b.store = shared
        shared.reset()

        daemon_a = self._build_daemon("a", server_a, local_a, wire_a, 0)
        daemon_b = self._build_daemon("b", server_b, local_b, wire_b, 1)
        await daemon_a.start()
        await daemon_b.start()
        ep_a = f"127.0.0.1:{daemon_a.port}"
        ep_b = f"127.0.0.1:{daemon_b.port}"
        task_a = asyncio.create_task(daemon_a.serve_until_stopped())
        task_b = asyncio.create_task(daemon_b.serve_until_stopped())

        client = ClusterClient(
            [ep_a, ep_b],
            backoff=BackoffPolicy(seed=c.seed),
            breaker_reset_after=0.2,
            hedge_after=c.hedge_after,
        )
        sketch = QuantileSketch((0.5, 0.9, 0.99))
        stop_reads = asyncio.Event()
        report: dict = {
            "seed": c.seed,
            "failed_disk": c.failed_disk,
            "crash_at_modeled": c.crash_at,
            "endpoints": {"a": ep_a, "b": ep_b},
        }
        fg_task: Optional[asyncio.Task] = None
        control: Optional[ServiceClient] = None
        try:
            # Both daemons up; a (first comer) owns every shard.
            await self._await(
                lambda: daemon_a.cluster.owned_shards
                and task_b.done() is False
                and daemon_b.cluster.ticks > 0,
                "both daemons heartbeating", 10.0,
            )
            shard = daemon_a.cluster.shard_of_disk(c.failed_disk)
            await client.call("fail_disk", shard=shard, disk=c.failed_disk)
            submitted = await client.call(
                "repair", shard=shard, disk=c.failed_disk
            )
            report["job_a"] = submitted.get("job_id")
            fg_task = asyncio.create_task(
                self._foreground(client, server_a, stop_reads, sketch)
            )

            # The scripted crash fires inside a's modeled repair reads.
            exit_a = await asyncio.wait_for(
                task_a, timeout=max(0.0, self._deadline - time.monotonic())
            )
            t_crash = time.monotonic()
            # Process death: queued-unpersisted writes vanish with the
            # daemon; leases stay on disk until the TTL expires.
            daemon_a.service.writer.abort()
            report["exit_code_a"] = exit_a
            if exit_a != EXIT_CRASHED:
                self._fail(
                    f"daemon a exited {exit_a}, expected {EXIT_CRASHED} (crash)"
                )

            control = await ServiceClient.connect("127.0.0.1", daemon_b.port)

            async def taken_over() -> bool:
                st = await control.call("cluster")
                return c.failed_disk in (st.get("handoffs") or [])

            if await self._await(taken_over, "journal handoff to b", 30.0):
                report["takeover_seconds"] = round(time.monotonic() - t_crash, 3)
            cluster_b = await control.call("cluster")
            report["handoffs"] = cluster_b.get("handoffs", [])
            report["failovers_b"] = cluster_b.get("failovers", 0)
            report["epochs_b"] = cluster_b.get("epochs", {})

            # Find b's resumed job and wait it out.
            job_b: Optional[int] = None

            async def job_found() -> bool:
                nonlocal job_b
                stats = await control.call("stats")
                for job in stats.get("jobs", []):
                    if job.get("disk") == c.failed_disk:
                        job_b = job.get("job_id")
                        return True
                return False

            if await self._await(job_found, "b's handoff repair job", 10.0):
                result = await control.call("wait", job_id=job_b)
                report["repair_b"] = {
                    k: v for k, v in result.items()
                    if k not in ("ok", "trace_id")
                }
                if not result.get("certified", False):
                    self._fail("b's handoff repair did not certify clean")
                if not result.get("resumed_stripes", 0):
                    self._fail(
                        "b resumed no stripes from a's journal — the crash "
                        "landed outside the repair window (tune crash_at)"
                    )
            stop_reads.set()
            report["foreground"] = await fg_task
            fg_task = None

            self._verify(report, shared, server_b, originals, daemon_a)
        finally:
            stop_reads.set()
            if fg_task is not None:
                fg_task.cancel()
                try:
                    await fg_task
                except (Exception, asyncio.CancelledError):  # noqa: BLE001
                    pass
            if control is not None:
                try:
                    await control.call("shutdown")
                except Exception:  # noqa: BLE001 - already down is fine
                    pass
                await control.close()
            await client.close()
            if not task_a.done():
                daemon_a._stop.set()
            try:
                report["exit_code_b"] = await asyncio.wait_for(task_b, 10.0)
            except asyncio.TimeoutError:
                task_b.cancel()
                self._fail("daemon b did not shut down cleanly")

        q = sketch.quantiles() if sketch.count else {}
        report["foreground_latency"] = {
            "count": sketch.count,
            **{f"p{format(k * 100, 'g').replace('.', '')}": round(v, 6)
               for k, v in q.items()},
        }
        p99 = q.get(0.99)
        if p99 is not None and p99 > c.p99_budget:
            self._fail(
                f"foreground p99 {p99:.3f}s exceeded budget {c.p99_budget}s"
            )
        report["failures"] = list(self.failures)
        report["passed"] = not self.failures
        current_registry().counter(
            "hdpsr_chaos_runs_total", "Chaos scenarios executed.",
        ).labels(outcome="pass" if report["passed"] else "fail").inc()
        return report

    # ------------------------------------------------------------ invariants
    def _verify(
        self,
        report: dict,
        shared: CountingStore,
        server_b: HighDensityStorageServer,
        originals: Dict[int, bytes],
        daemon_a: ServiceDaemon,
    ) -> None:
        """The four promises: identical bytes, valid sidecars, no double
        writes, and a fenced stale owner."""
        mismatched = []
        for si, want in originals.items():
            try:
                got = server_b.read_object(si)
            except Exception as exc:  # noqa: BLE001 - recorded as mismatch
                mismatched.append((si, repr(exc)))
                continue
            if got != want:
                mismatched.append((si, "bytes differ"))
        report["byte_identical"] = not mismatched
        if mismatched:
            self._fail(f"objects not byte-identical after handoff: {mismatched}")

        dupes = shared.duplicates()
        report["duplicate_writes"] = [
            [d, [cid.stripe_index, cid.shard_index]] for d, cid in dupes
        ]
        if dupes:
            self._fail(f"{len(dupes)} chunk(s) persisted twice: {dupes[:5]}")

        bad_sidecars = []
        for (disk, cid), _count in sorted(shared.write_counts.items()):
            backend = shared.inner.shard_for(disk)
            verify = getattr(backend, "verify_chunk", None)
            if verify is not None and not verify(disk, cid):
                bad_sidecars.append((disk, cid))
        report["verified_chunks"] = len(shared.write_counts) - len(bad_sidecars)
        if bad_sidecars:
            self._fail(f"CRC32C sidecar mismatch on rebuilt chunks: {bad_sidecars}")

        # Revival: a's in-memory state still believes it owns the shard at
        # its old epoch; the on-disk lease now carries b's bumped epoch, so
        # the commit-point fence must reject it.
        try:
            daemon_a.cluster.check_fence(self.config.failed_disk)
        except FencedError as exc:
            report["stale_owner_fenced"] = True
            report["fence_epochs"] = {
                "held": exc.held_epoch, "current": exc.current_epoch,
            }
        else:
            report["stale_owner_fenced"] = False
            self._fail(
                "revived stale owner passed the fence — split-brain possible"
            )


def run_chaos(config: ChaosConfig) -> dict:
    """Synchronous front door for the CLI/benchmark: run one scenario."""
    return asyncio.run(ChaosScenario(config).run())
