"""The ``hdpsr client`` workload driver.

:class:`ServiceClient` is a thin async JSON-lines client for one daemon
connection. :func:`run_workload` is the benchmark/smoke driver: it fails
disks, submits their repairs, and — while the repairs run — hammers the
front door with seeded random chunk reads from several concurrent
connections, measuring *wall-clock* user latency into a
:class:`~repro.obs.quantiles.QuantileSketch`. The report carries repair
summaries plus foreground p50/p99, which is the paper-style "user latency
during recovery" number the service exists to protect.

Every request minted by :meth:`ServiceClient.call` carries the ambient
span context on the wire (``trace``): install one with
:func:`~repro.obs.context.use_span` — or let :func:`run_workload` mint a
fresh ``trace_id`` per episode — and the daemon's exported trace shows the
server-side anatomy of each client call, correlated by ``trace_id``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.faults.report import EXIT_CRASHED
from repro.obs.context import current_span, current_tracer, use_span
from repro.obs.quantiles import QuantileSketch
from repro.obs.tracer import new_span_context
from repro.service import protocol
from repro.service.protocol import MAX_MESSAGE_BYTES
from repro.utils.rng import make_rng


class ServiceError(ReproError):
    """The daemon answered ``ok: false``."""

    def __init__(self, message: str, crashed: bool = False) -> None:
        super().__init__(message)
        self.crashed = crashed


class ServiceClient:
    """One connection to a :class:`~repro.service.netserver.ServiceDaemon`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_MESSAGE_BYTES
        )
        return cls(reader, writer)

    async def call(self, op: str, **fields) -> dict:
        """One request/response round trip (serialized per connection).

        When a span context is installed (:func:`use_span`), a per-call
        child span is minted and sent as the request's ``trace`` field —
        the daemon re-installs it, so its spans parent onto this call.
        """
        msg = {"op": op}
        msg.update(fields)
        ctx = current_span()
        if ctx is not None:
            call_ctx = ctx.child()
            msg.setdefault("trace", call_ctx.to_wire())
            tracer = current_tracer()
            if tracer.enabled:
                # Mark the client side of the call under the *call* context
                # so the marker and the daemon's request span share lineage.
                with use_span(call_ctx):
                    tracer.instant("request", f"call:{op}", op=op)
        try:
            async with self._lock:
                self._writer.write(protocol.encode_message(msg))
                await self._writer.drain()
                reply = await protocol.read_message(self._reader)
        except (ConnectionResetError, BrokenPipeError):
            # A dying daemon may RST instead of FIN; same meaning here.
            raise ServiceError(
                f"connection lost during {op!r}", crashed=True
            ) from None
        if reply is None:
            raise ServiceError(f"connection closed during {op!r}", crashed=True)
        if not reply.get("ok", False):
            raise ServiceError(
                reply.get("error", "unknown error"),
                crashed=bool(reply.get("crashed", False)),
            )
        return reply

    async def stats(self) -> dict:
        """Live telemetry snapshot (see :func:`repro.service.telemetry.stats_snapshot`)."""
        return await self.call("stats")

    async def metrics_text(self) -> str:
        """The daemon's registry as Prometheus text exposition."""
        reply = await self.call("metrics")
        return str(reply["metrics_text"])

    async def read_chunk(self, stripe: int, shard: int) -> bytes:
        reply = await self.call("read", stripe=stripe, shard=shard)
        return protocol.unpack_bytes(reply["data_b64"])

    async def read_object(self, stripe: int) -> bytes:
        reply = await self.call("read_object", stripe=stripe)
        return protocol.unpack_bytes(reply["data_b64"])

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_workload(
    host: str,
    port: int,
    *,
    disks: Sequence[int],
    reads: int = 100,
    read_concurrency: int = 4,
    seed: int = 0,
    resume: bool = False,
    fail: bool = True,
    shutdown: bool = False,
) -> dict:
    """Drive one repair-under-load episode; returns the client-side report.

    Fails each disk in ``disks`` (unless ``fail=False`` or resuming),
    submits their repairs, then issues ``reads`` seeded-random chunk reads
    across ``read_concurrency`` connections while the repairs run, and
    finally waits for every repair. The report's ``exit_code`` is the max
    over repair outcomes (0 clean / 3 data loss), so callers can exit with
    it directly.

    The whole episode runs under one freshly minted trace root (unless the
    caller already installed a span context), and the report carries its
    ``trace_id`` — scrape the daemon's trace export and grep for it.
    """
    root = current_span() or new_span_context()
    with use_span(root):
        return await _run_workload(
            root.trace_id, host, port, disks=disks, reads=reads,
            read_concurrency=read_concurrency, seed=seed, resume=resume,
            fail=fail, shutdown=shutdown,
        )


async def _run_workload(
    trace_id: str,
    host: str,
    port: int,
    *,
    disks: Sequence[int],
    reads: int,
    read_concurrency: int,
    seed: int,
    resume: bool,
    fail: bool,
    shutdown: bool,
) -> dict:
    control = await ServiceClient.connect(host, port)
    try:
        hello = await control.call("ping")
        num_stripes = int(hello["num_stripes"])
        n = int(hello["n"])

        # Disks must be failed even when resuming: a restarted daemon holds
        # fresh Disk objects, and the journaled job only replays reads.
        if fail:
            already = set(hello.get("failed", []))
            for disk in disks:
                if disk not in already:
                    await control.call("fail_disk", disk=disk)
        jobs = [
            await control.call("repair", disk=disk, resume=resume)
            for disk in disks
        ]

        latencies = QuantileSketch((0.5, 0.9, 0.99))
        rng = make_rng(seed)
        targets = [
            (int(rng.integers(num_stripes)), int(rng.integers(n)))
            for _ in range(reads)
        ]
        queue: "asyncio.Queue[Optional[tuple]]" = asyncio.Queue()
        for t in targets:
            queue.put_nowait(t)
        read_errors: List[str] = []

        async def reader_loop() -> None:
            conn = await ServiceClient.connect(host, port)
            try:
                while True:
                    try:
                        stripe, shard = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    started = time.monotonic()
                    try:
                        await conn.read_chunk(stripe, shard)
                    except ServiceError as exc:
                        if exc.crashed:
                            raise
                        read_errors.append(f"({stripe},{shard}): {exc}")
                    latencies.observe(time.monotonic() - started)
            finally:
                await conn.close()

        crashed = False
        summaries: List[dict] = []
        try:
            workers = [
                asyncio.create_task(reader_loop())
                for _ in range(max(1, read_concurrency))
            ]
            await asyncio.gather(*workers)
            summaries = [
                (await control.call("wait", job_id=job["job_id"]))
                for job in jobs
            ]
        except ServiceError as exc:
            # A scripted process_crash killed the daemon mid-workload: the
            # episode is resumable, report it rather than raising.
            if not exc.crashed:
                raise
            crashed = True
        exit_code = (
            EXIT_CRASHED
            if crashed
            else max((int(s.get("exit_code", 0)) for s in summaries), default=0)
        )
        report: Dict[str, object] = {
            "trace_id": trace_id,
            "repairs": [
                {k: v for k, v in s.items() if k not in ("ok", "trace_id")}
                for s in summaries
            ],
            "crashed": crashed,
            "reads": latencies.count,
            "read_errors": read_errors,
            "read_p50_seconds": latencies.quantile(0.5),
            "read_p99_seconds": latencies.quantile(0.99),
            "exit_code": exit_code,
        }
        if shutdown and not crashed:
            await control.call("shutdown")
        return report
    finally:
        await control.close()
