"""The ``hdpsr client`` workload driver.

:class:`ServiceClient` is a thin async JSON-lines client for one daemon
connection. :func:`run_workload` is the benchmark/smoke driver: it fails
disks, submits their repairs, and — while the repairs run — hammers the
front door with seeded random chunk reads from several concurrent
connections, measuring *wall-clock* user latency into a
:class:`~repro.obs.quantiles.QuantileSketch`. The report carries repair
summaries plus foreground p50/p99, which is the paper-style "user latency
during recovery" number the service exists to protect.

Every request minted by :meth:`ServiceClient.call` carries the ambient
span context on the wire (``trace``): install one with
:func:`~repro.obs.context.use_span` — or let :func:`run_workload` mint a
fresh ``trace_id`` per episode — and the daemon's exported trace shows the
server-side anatomy of each client call, correlated by ``trace_id``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.faults.report import EXIT_CRASHED
from repro.obs.context import current_registry, current_span, current_tracer, use_span
from repro.obs.quantiles import QuantileSketch
from repro.obs.tracer import new_span_context
from repro.service import protocol
from repro.service.overload import RetryBudget
from repro.service.protocol import (
    ERR_CRASH,
    ERR_NOT_OWNER,
    ERR_OVERLOAD,
    MAX_MESSAGE_BYTES,
)
from repro.utils.rng import make_rng
from repro.workloads.arrivals import make_arrivals


class ServiceError(ReproError):
    """The daemon answered ``ok: false`` (or the connection died).

    Carries the v3 error taxonomy: ``code`` is one of
    :data:`repro.service.protocol.ERROR_CODES` and ``retryable`` says
    whether a client may transparently retry. ``crashed`` is kept as a
    property for pre-v3 call sites. For ``not_owner`` errors the reply's
    redirect fields are exposed as :attr:`owner`/:attr:`endpoint`/
    :attr:`epoch`/:attr:`shard`.
    """

    def __init__(
        self,
        message: str,
        crashed: bool = False,
        code: Optional[str] = None,
        retryable: Optional[bool] = None,
        reply: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        if code is None:
            code = ERR_CRASH if crashed else protocol.ERR_INTERNAL
        self.code = code
        self.retryable = (
            protocol.is_retryable(code) if retryable is None else bool(retryable)
        )
        self.reply = dict(reply or {})

    @property
    def crashed(self) -> bool:
        return self.code == ERR_CRASH

    @property
    def owner(self) -> Optional[str]:
        value = self.reply.get("owner")
        return None if value is None else str(value)

    @property
    def endpoint(self) -> Optional[str]:
        value = self.reply.get("endpoint")
        return None if value is None else str(value)

    @property
    def epoch(self) -> int:
        return int(self.reply.get("epoch", -1))

    @property
    def shard(self) -> int:
        return int(self.reply.get("shard", -1))

    @property
    def retry_after_ms(self) -> float:
        """Backoff-floor hint from an ``overload`` reply (0 when absent)."""
        try:
            return float(self.reply.get("retry_after_ms", 0.0))
        except (TypeError, ValueError):
            return 0.0


class ServiceClient:
    """One connection to a :class:`~repro.service.netserver.ServiceDaemon`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_MESSAGE_BYTES
        )
        return cls(reader, writer)

    async def call(self, op: str, **fields) -> dict:
        """One request/response round trip (serialized per connection).

        When a span context is installed (:func:`use_span`), a per-call
        child span is minted and sent as the request's ``trace`` field —
        the daemon re-installs it, so its spans parent onto this call.
        """
        msg = {"op": op}
        msg.update(fields)
        ctx = current_span()
        if ctx is not None:
            call_ctx = ctx.child()
            msg.setdefault("trace", call_ctx.to_wire())
            tracer = current_tracer()
            if tracer.enabled:
                # Mark the client side of the call under the *call* context
                # so the marker and the daemon's request span share lineage.
                with use_span(call_ctx):
                    tracer.instant("request", f"call:{op}", op=op)
        try:
            async with self._lock:
                self._writer.write(protocol.encode_message(msg))
                await self._writer.drain()
                reply = await protocol.read_message(self._reader)
        except (ConnectionResetError, BrokenPipeError):
            # A dying daemon may RST instead of FIN; same meaning here.
            raise ServiceError(
                f"connection lost during {op!r}", code=ERR_CRASH
            ) from None
        if reply is None:
            raise ServiceError(f"connection closed during {op!r}", code=ERR_CRASH)
        if not reply.get("ok", False):
            # Pre-v3 daemons send no code; fall back on the crashed flag.
            code = reply.get("code")
            if code is None:
                code = ERR_CRASH if reply.get("crashed") else protocol.ERR_INTERNAL
            raise ServiceError(
                reply.get("error", "unknown error"),
                code=str(code),
                retryable=reply.get("retryable"),
                reply=reply,
            )
        return reply

    async def stats(self) -> dict:
        """Live telemetry snapshot (see :func:`repro.service.telemetry.stats_snapshot`)."""
        return await self.call("stats")

    async def metrics_text(self) -> str:
        """The daemon's registry as Prometheus text exposition."""
        reply = await self.call("metrics")
        return str(reply["metrics_text"])

    async def read_chunk(
        self, stripe: int, shard: int, deadline_ms: Optional[float] = None
    ) -> bytes:
        fields = {"stripe": stripe, "shard": shard}
        if deadline_ms is not None:
            fields["deadline_ms"] = float(deadline_ms)
        reply = await self.call("read", **fields)
        return protocol.unpack_bytes(reply["data_b64"])

    async def read_object(
        self, stripe: int, deadline_ms: Optional[float] = None
    ) -> bytes:
        fields = {"stripe": stripe}
        if deadline_ms is not None:
            fields["deadline_ms"] = float(deadline_ms)
        reply = await self.call("read_object", **fields)
        return protocol.unpack_bytes(reply["data_b64"])

    async def cluster(self) -> dict:
        """The daemon's cluster/ownership snapshot (v3 ``cluster`` op)."""
        return await self.call("cluster")

    async def scrub(self) -> dict:
        """The daemon's scrub-plane snapshot (v5 ``scrub`` op):
        cursor/cycle position, progress + ETA, verify counts, and the
        quarantine ledger. ``{"enabled": False}`` on a daemon running
        without a scrubber."""
        return await self.call("scrub")

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` grows ``base * multiplier**attempt`` up to ``cap``,
    then subtracts up to ``jitter`` of itself using a seeded RNG — so
    retry storms decorrelate, but a given seed replays the exact same
    delay sequence (the chaos harness asserts on timings).
    """

    def __init__(
        self,
        base: float = 0.02,
        cap: float = 0.5,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if base <= 0 or cap < base or multiplier < 1 or not 0 <= jitter <= 1:
            raise ReproError(
                f"bad backoff policy (base={base}, cap={cap}, "
                f"multiplier={multiplier}, jitter={jitter})"
            )
        self.base = base
        self.cap = cap
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = make_rng(seed)

    def delay(self, attempt: int) -> float:
        raw = min(self.cap, self.base * self.multiplier ** max(0, attempt))
        return raw * (1.0 - self.jitter * float(self._rng.random()))


#: Circuit-breaker states, exported as 0/1/2 on the state gauge.
BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half_open"
BREAKER_OPEN = "open"
_BREAKER_GAUGE = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


class CircuitBreaker:
    """Per-daemon failure gate: stop hammering an endpoint that is down.

    ``failure_threshold`` consecutive retryable failures open the
    breaker; after ``reset_after`` seconds one probe request is let
    through (half-open) — its outcome closes or re-opens the circuit.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.failure_threshold = max(1, failure_threshold)
        self.reset_after = reset_after
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return BREAKER_CLOSED
        if self._clock() - self._opened_at >= self.reset_after:
            return BREAKER_HALF_OPEN
        return BREAKER_OPEN

    def allow(self) -> bool:
        """Whether a request may go to this endpoint right now."""
        state = self.state
        if state == BREAKER_CLOSED:
            return True
        if state == BREAKER_OPEN:
            return False
        if self._probing:
            return False  # one probe at a time through a half-open circuit
        self._probing = True
        return True

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._opened_at = self._clock()


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Split ``host:port`` (the port is the part after the last colon)."""
    host, sep, port = endpoint.rpartition(":")
    if not sep or not port.isdigit():
        raise ReproError(f"bad endpoint {endpoint!r}; expected host:port")
    return host or "127.0.0.1", int(port)


class ClusterClient:
    """Backpressure-aware client over a fleet of repair daemons.

    Wraps one :class:`ServiceClient` per endpoint and layers on the
    cluster survival kit:

    * retries **only retryable** errors (``crash``/``overload``/
      ``not_owner``) with capped exponential backoff + seeded jitter;
      fatal codes surface immediately;
    * per-daemon :class:`CircuitBreaker`\\ s, so a dead endpoint stops
      absorbing attempts until its reset window elapses;
    * ``NOT_OWNER`` redirect handling: the reply's ``endpoint`` updates a
      shard→endpoint ownership cache and the request is re-sent straight
      to the owner (a redirect does not count against the breaker);
    * per-endpoint :class:`~repro.service.overload.RetryBudget` token
      buckets, so during a brownout retries amplify offered load by at
      most ``1 + retry_budget_ratio`` instead of storming the daemon;
      ``retry_after_ms`` hints from ``overload`` replies are honored as a
      floor under the jittered exponential backoff;
    * hedged failover reads: :meth:`read_chunk` can fire a backup read at
      a second daemon after ``hedge_after`` seconds of silence and take
      whichever answers first — bounding foreground p99 through a daemon
      death instead of waiting out timeouts.

    Everything is observable: retries (by code), backoff sleeps, redirects,
    failovers, hedged reads, and breaker states land in the ambient
    metrics registry under ``hdpsr_client_*``.
    """

    def __init__(
        self,
        endpoints: Sequence[str],
        *,
        retries: int = 6,
        backoff: Optional[BackoffPolicy] = None,
        breaker_threshold: int = 3,
        breaker_reset_after: float = 1.0,
        hedge_after: Optional[float] = 0.05,
        retry_budget_ratio: float = 0.1,
        retry_budget_cap: float = 10.0,
    ) -> None:
        if not endpoints:
            raise ReproError("ClusterClient needs at least one endpoint")
        self.endpoints: List[str] = list(dict.fromkeys(endpoints))
        self.retries = retries
        self.backoff = backoff or BackoffPolicy()
        self.hedge_after = hedge_after
        self._budget_ratio = retry_budget_ratio
        self._budget_cap = retry_budget_cap
        self._budgets: Dict[str, RetryBudget] = {}
        self._conns: Dict[str, ServiceClient] = {}
        self._breakers: Dict[str, CircuitBreaker] = {
            ep: CircuitBreaker(breaker_threshold, breaker_reset_after)
            for ep in self.endpoints
        }
        #: shard index -> endpoint learned from redirects / cluster ops.
        self.owners: Dict[int, str] = {}
        self.retry_count = 0
        self.redirects = 0
        self.failovers = 0
        self.hedged_reads = 0

    # ----------------------------------------------------------- connections
    async def _conn(self, endpoint: str) -> ServiceClient:
        client = self._conns.get(endpoint)
        if client is None:
            host, port = parse_endpoint(endpoint)
            client = await ServiceClient.connect(host, port)
            self._conns[endpoint] = client
        return client

    def _drop_conn(self, endpoint: str) -> None:
        client = self._conns.pop(endpoint, None)
        if client is not None:
            client._writer.close()

    def breaker_state(self, endpoint: str) -> str:
        return self._breakers[endpoint].state

    def retry_budget(self, endpoint: str) -> RetryBudget:
        """The endpoint's retry token bucket (created on first use)."""
        budget = self._budgets.get(endpoint)
        if budget is None:
            budget = self._budgets[endpoint] = RetryBudget(
                ratio=self._budget_ratio, cap=self._budget_cap
            )
        return budget

    def _export_breakers(self) -> None:
        gauge = current_registry().gauge(
            "hdpsr_client_breaker_state",
            "Circuit state per endpoint (0 closed, 1 half-open, 2 open).",
        )
        for ep, breaker in self._breakers.items():
            gauge.labels(endpoint=ep).set(_BREAKER_GAUGE[breaker.state])

    def _candidates(self, preferred: Optional[str]) -> List[str]:
        """Endpoints to try, preferred first, breaker-open ones last."""
        order = list(self.endpoints)
        if preferred in order:
            order.remove(preferred)
            order.insert(0, preferred)
        allowed = [ep for ep in order if self._breakers[ep].allow()]
        # With every breaker open there is nothing to lose: try them all
        # anyway rather than failing without a single attempt.
        return allowed or order

    # ----------------------------------------------------------------- calls
    async def call(
        self, op: str, *, shard: Optional[int] = None, **fields
    ) -> dict:
        """One logical request against the cluster.

        ``shard`` is a *routing hint only* — it routes to the cached
        lease owner first (mutations) and is not sent on the wire, so it
        never collides with ops whose payload has a ``shard`` field of
        its own (``read``'s in-stripe shard index goes through
        ``fields``, via :meth:`read_chunk`). Reads can go anywhere — any
        daemon serves the shared store.
        """
        preferred = self.owners.get(shard) if shard is not None else None
        return await self._call_with_retry(op, fields, preferred)

    async def _call_with_retry(
        self, op: str, fields: dict, preferred: Optional[str]
    ) -> dict:
        """The retry ladder; ``fields`` go on the wire verbatim."""
        last_error: Optional[ServiceError] = None
        registry = current_registry()
        retry_after_floor = 0.0
        first = True
        for attempt in range(self.retries + 1):
            for endpoint in self._candidates(preferred):
                breaker = self._breakers[endpoint]
                budget = self.retry_budget(endpoint)
                if first:
                    budget.on_request()
                    first = False
                elif last_error is not None and last_error.code == ERR_OVERLOAD:
                    # Overload retries spend the endpoint's token bucket:
                    # when it runs dry, surface the overload instead of
                    # amplifying offered load into a browned-out daemon.
                    # (Crash/redirect retries are failover correctness,
                    # not load amplification, and stay unmetered.)
                    if not budget.allow_retry():
                        self._export_breakers()
                        raise last_error
                try:
                    reply = await self._call_endpoint(endpoint, op, fields)
                except ServiceError as exc:
                    last_error = exc
                    if exc.code == ERR_OVERLOAD and exc.retry_after_ms > 0:
                        retry_after_floor = max(
                            retry_after_floor, exc.retry_after_ms / 1000.0
                        )
                    if exc.code == ERR_NOT_OWNER and exc.endpoint:
                        # Redirect: learn the owner, go straight there.
                        self.redirects += 1
                        registry.counter(
                            "hdpsr_client_redirects_total",
                            "NOT_OWNER redirects followed.",
                        ).inc()
                        if exc.shard >= 0:
                            self.owners[exc.shard] = exc.endpoint
                        if exc.endpoint not in self.endpoints:
                            self.endpoints.append(exc.endpoint)
                            self._breakers.setdefault(
                                exc.endpoint, CircuitBreaker()
                            )
                        preferred = exc.endpoint
                        break  # inner loop; no backoff for a redirect
                    if not exc.retryable:
                        self._export_breakers()
                        raise
                    breaker.record_failure()
                    registry.counter(
                        "hdpsr_client_retries_total",
                        "Retryable request failures, by error code.",
                    ).labels(code=exc.code).inc()
                    self.retry_count += 1
                    if exc.crashed:
                        self._drop_conn(endpoint)
                        if endpoint == preferred:
                            # The shard's owner died under us; any other
                            # endpoint we reach next is a failover.
                            self.failovers += 1
                            registry.counter(
                                "hdpsr_client_failovers_total",
                                "Requests moved to a different daemon "
                                "after their target died.",
                            ).inc()
                            preferred = None
                    continue  # next endpoint, no sleep yet
                else:
                    breaker.record_success()
                    self._export_breakers()
                    return reply
            else:
                # Every candidate failed this round: back off, then retry.
                delay = self.backoff.delay(attempt)
                if retry_after_floor > 0.0:
                    # The daemon told us how long its standing queue needs
                    # to drain; sleeping less than that is just another
                    # doomed request.
                    if retry_after_floor > delay:
                        registry.counter(
                            "hdpsr_client_retry_after_honored_total",
                            "Backoff sleeps raised to a daemon's "
                            "retry_after_ms hint.",
                        ).inc()
                    delay = max(delay, retry_after_floor)
                    retry_after_floor = 0.0
                registry.summary(
                    "hdpsr_client_backoff_seconds",
                    "Backoff sleeps between retry rounds.",
                ).observe(delay)
                await asyncio.sleep(delay)
        self._export_breakers()
        assert last_error is not None
        raise last_error

    async def _call_endpoint(self, endpoint: str, op: str, fields: dict) -> dict:
        try:
            conn = await self._conn(endpoint)
        except OSError as exc:
            self._drop_conn(endpoint)
            raise ServiceError(
                f"cannot reach {endpoint}: {exc}", code=ERR_CRASH
            ) from None
        try:
            return await conn.call(op, **fields)
        except ServiceError as exc:
            if exc.crashed:
                self._drop_conn(endpoint)
            raise

    # ----------------------------------------------------------------- reads
    async def read_chunk(self, stripe: int, shard_index: int) -> bytes:
        """Front-door chunk read with hedged failover.

        The primary attempt goes to the first live endpoint; if it stays
        silent for ``hedge_after`` seconds a second attempt fires at the
        next endpoint, and the first successful reply wins. A primary
        that fails fast falls back to :meth:`call`'s retry ladder.
        """
        candidates = self._candidates(None)
        fields = {"stripe": int(stripe), "shard": int(shard_index)}
        if self.hedge_after is None or len(candidates) < 2:
            reply = await self._call_with_retry("read", fields, None)
            return protocol.unpack_bytes(reply["data_b64"])
        primary = asyncio.create_task(
            self._call_endpoint(candidates[0], "read", fields)
        )
        done, _ = await asyncio.wait({primary}, timeout=self.hedge_after)
        if done:
            try:
                reply = primary.result()
                self._breakers[candidates[0]].record_success()
                return protocol.unpack_bytes(reply["data_b64"])
            except ServiceError as exc:
                if not exc.retryable:
                    raise
                self._breakers[candidates[0]].record_failure()
                reply = await self._call_with_retry("read", fields, None)
                return protocol.unpack_bytes(reply["data_b64"])
        # Primary is slow (dying daemon, slow_peer fault): hedge.
        self.hedged_reads += 1
        current_registry().counter(
            "hdpsr_client_hedged_reads_total",
            "Reads that fired a backup request at a second daemon.",
        ).inc()
        hedge = asyncio.create_task(
            self._call_endpoint(candidates[1], "read", fields)
        )
        pending = {primary, hedge}
        last_exc: Optional[BaseException] = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                exc = task.exception()
                if exc is None:
                    for p in pending:
                        p.cancel()
                    for p in pending:
                        try:
                            await p
                        except (ServiceError, asyncio.CancelledError):
                            pass
                    return protocol.unpack_bytes(task.result()["data_b64"])
                last_exc = exc
        if isinstance(last_exc, ServiceError) and last_exc.retryable:
            reply = await self._call_with_retry("read", fields, None)
            return protocol.unpack_bytes(reply["data_b64"])
        raise last_exc  # type: ignore[misc]

    async def cluster_status(self) -> Dict[str, dict]:
        """Per-endpoint ``cluster`` snapshots (errors become ``{"error"}``)."""
        out: Dict[str, dict] = {}
        for endpoint in self.endpoints:
            try:
                reply = await self._call_endpoint(endpoint, "cluster", {})
                out[endpoint] = {
                    k: v for k, v in reply.items() if k not in ("ok", "trace_id")
                }
                for shard, meta in (reply.get("leases") or {}).items():
                    if meta.get("endpoint"):
                        self.owners[int(shard)] = str(meta["endpoint"])
            except (ServiceError, OSError) as exc:
                out[endpoint] = {"error": str(exc)}
        return out

    async def close(self) -> None:
        for endpoint in list(self._conns):
            client = self._conns.pop(endpoint)
            await client.close()


async def run_workload(
    host: str,
    port: int,
    *,
    disks: Sequence[int],
    reads: int = 100,
    read_concurrency: int = 4,
    seed: int = 0,
    resume: bool = False,
    fail: bool = True,
    shutdown: bool = False,
) -> dict:
    """Drive one repair-under-load episode; returns the client-side report.

    Fails each disk in ``disks`` (unless ``fail=False`` or resuming),
    submits their repairs, then issues ``reads`` seeded-random chunk reads
    across ``read_concurrency`` connections while the repairs run, and
    finally waits for every repair. The report's ``exit_code`` is the max
    over repair outcomes (0 clean / 3 data loss), so callers can exit with
    it directly.

    The whole episode runs under one freshly minted trace root (unless the
    caller already installed a span context), and the report carries its
    ``trace_id`` — scrape the daemon's trace export and grep for it.
    """
    root = current_span() or new_span_context()
    with use_span(root):
        return await _run_workload(
            root.trace_id, host, port, disks=disks, reads=reads,
            read_concurrency=read_concurrency, seed=seed, resume=resume,
            fail=fail, shutdown=shutdown,
        )


async def _run_workload(
    trace_id: str,
    host: str,
    port: int,
    *,
    disks: Sequence[int],
    reads: int,
    read_concurrency: int,
    seed: int,
    resume: bool,
    fail: bool,
    shutdown: bool,
) -> dict:
    control = await ServiceClient.connect(host, port)
    try:
        hello = await control.call("ping")
        num_stripes = int(hello["num_stripes"])
        n = int(hello["n"])

        # Disks must be failed even when resuming: a restarted daemon holds
        # fresh Disk objects, and the journaled job only replays reads.
        if fail:
            already = set(hello.get("failed", []))
            for disk in disks:
                if disk not in already:
                    await control.call("fail_disk", disk=disk)
        jobs = [
            await control.call("repair", disk=disk, resume=resume)
            for disk in disks
        ]

        latencies = QuantileSketch((0.5, 0.9, 0.99))
        rng = make_rng(seed)
        targets = [
            (int(rng.integers(num_stripes)), int(rng.integers(n)))
            for _ in range(reads)
        ]
        queue: "asyncio.Queue[Optional[tuple]]" = asyncio.Queue()
        for t in targets:
            queue.put_nowait(t)
        read_errors: List[str] = []

        async def reader_loop() -> None:
            conn = await ServiceClient.connect(host, port)
            try:
                while True:
                    try:
                        stripe, shard = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    started = time.monotonic()
                    try:
                        await conn.read_chunk(stripe, shard)
                    except ServiceError as exc:
                        if exc.crashed:
                            raise
                        read_errors.append(f"({stripe},{shard}): {exc}")
                    latencies.observe(time.monotonic() - started)
            finally:
                await conn.close()

        crashed = False
        summaries: List[dict] = []
        try:
            workers = [
                asyncio.create_task(reader_loop())
                for _ in range(max(1, read_concurrency))
            ]
            await asyncio.gather(*workers)
            summaries = [
                (await control.call("wait", job_id=job["job_id"]))
                for job in jobs
            ]
        except ServiceError as exc:
            # A scripted process_crash killed the daemon mid-workload: the
            # episode is resumable, report it rather than raising.
            if not exc.crashed:
                raise
            crashed = True
        exit_code = (
            EXIT_CRASHED
            if crashed
            else max((int(s.get("exit_code", 0)) for s in summaries), default=0)
        )
        report: Dict[str, object] = {
            "trace_id": trace_id,
            "repairs": [
                {k: v for k, v in s.items() if k not in ("ok", "trace_id")}
                for s in summaries
            ],
            "crashed": crashed,
            "reads": latencies.count,
            "read_errors": read_errors,
            "read_p50_seconds": latencies.quantile(0.5),
            "read_p99_seconds": latencies.quantile(0.99),
            "exit_code": exit_code,
        }
        if shutdown and not crashed:
            await control.call("shutdown")
        return report
    finally:
        await control.close()


async def run_open_loop(
    host: str,
    port: int,
    *,
    shape: str = "constant",
    rate: float = 50.0,
    duration: float = 5.0,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    disks: Sequence[int] = (),
    fail: bool = True,
    connections: int = 32,
    shutdown: bool = False,
    shape_kwargs: Optional[dict] = None,
) -> dict:
    """Open-loop front-door load: send at the schedule's rate, period.

    Unlike :func:`run_workload` (closed-loop: each connection waits for
    its previous read), this driver pre-draws an arrival schedule
    (:func:`repro.workloads.arrivals.make_arrivals`) and fires one read
    per arrival *at its scheduled instant*, whether or not earlier reads
    have returned — the way real user populations load a service, and the
    only way to push a daemon past its knee. Failed requests are counted,
    never retried (an open-loop client that retries is a closed loop in
    denial).

    Latency is measured from the *scheduled arrival*, not the send, so
    client-side queueing (bounded by ``connections`` sockets) counts
    against the service exactly as coordinated-omission-free load
    generators do.

    When ``disks`` is non-empty the episode fails them and runs their
    repairs concurrently with the load (waited on at the end), mirroring
    the paper's repair-under-load setup.

    Returns a report with offered vs completed counts, per-error-code
    tallies (``overload`` sheds and ``deadline_exceeded`` appear here),
    goodput, and p50/p90/p99 from scheduled-arrival latency.
    """
    schedule = make_arrivals(
        shape, rate, duration, seed=seed, **(shape_kwargs or {})
    )
    control = await ServiceClient.connect(host, port)
    pool: "asyncio.Queue[ServiceClient]" = asyncio.Queue()
    opened: List[ServiceClient] = []
    try:
        hello = await control.call("ping")
        num_stripes = int(hello["num_stripes"])
        n = int(hello["n"])
        jobs: List[dict] = []
        if disks:
            if fail:
                already = set(hello.get("failed", []))
                for disk in disks:
                    if disk not in already:
                        await control.call("fail_disk", disk=disk)
            jobs = [await control.call("repair", disk=disk) for disk in disks]

        for _ in range(max(1, connections)):
            conn = await ServiceClient.connect(host, port)
            opened.append(conn)
            pool.put_nowait(conn)

        rng = make_rng(seed + 1)
        targets = [
            (int(rng.integers(num_stripes)), int(rng.integers(n)))
            for _ in range(schedule.count)
        ]
        latencies = QuantileSketch((0.5, 0.9, 0.99))
        errors: Dict[str, int] = {}
        ok_count = 0

        async def fire(scheduled: float, stripe: int, shard: int) -> None:
            nonlocal ok_count
            conn = await pool.get()
            try:
                await conn.read_chunk(stripe, shard, deadline_ms=deadline_ms)
            except ServiceError as exc:
                errors[exc.code] = errors.get(exc.code, 0) + 1
            else:
                ok_count += 1
                latencies.observe(time.monotonic() - scheduled)
            finally:
                pool.put_nowait(conn)

        started = time.monotonic()
        tasks: List[asyncio.Task] = []
        for offset, target in zip(schedule.times, targets):
            delay = started + float(offset) - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(
                asyncio.create_task(
                    fire(started + float(offset), target[0], target[1])
                )
            )
        if tasks:
            await asyncio.gather(*tasks)
        elapsed = time.monotonic() - started

        summaries = [
            (await control.call("wait", job_id=job["job_id"])) for job in jobs
        ]
        report: Dict[str, object] = {
            "shape": schedule.params,
            "offered": schedule.count,
            "offered_rate": schedule.mean_rate,
            "completed": ok_count,
            "errors": errors,
            "goodput_per_s": ok_count / elapsed if elapsed > 0 else 0.0,
            "read_p50_seconds": latencies.quantile(0.5),
            "read_p90_seconds": latencies.quantile(0.9),
            "read_p99_seconds": latencies.quantile(0.99),
            "elapsed_seconds": elapsed,
            "deadline_ms": deadline_ms,
            "repairs": [
                {k: v for k, v in s.items() if k not in ("ok", "trace_id")}
                for s in summaries
            ],
            "exit_code": max(
                (int(s.get("exit_code", 0)) for s in summaries), default=0
            ),
        }
        if shutdown:
            await control.call("shutdown")
        return report
    finally:
        for conn in opened:
            await conn.close()
        await control.close()
