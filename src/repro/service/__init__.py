"""``repro.service`` — the asyncio sharded repair service.

The subsystems below turn the library's single-threaded repair pipeline
into a long-running service that overlaps many repairs and keeps serving
client reads while disks rebuild:

* :mod:`repro.service.admission` — per-disk read-concurrency gates with
  foreground-over-background priority;
* :mod:`repro.service.sharding` — the bounded, batching async writer in
  front of a :class:`~repro.hdss.store.ShardedChunkStore`;
* :mod:`repro.service.service` — :class:`RepairService`: the repair
  supervisor plus the ``submit_repair`` / ``read_chunk`` front door;
* :mod:`repro.service.protocol` — JSON-lines wire protocol (with
  request-scoped trace propagation and the v3 error taxonomy);
* :mod:`repro.service.netserver` / :mod:`repro.service.client` — the
  ``hdpsr serve`` daemon and ``hdpsr client`` workload driver, plus the
  cluster-aware :class:`ClusterClient` (retries, circuit breakers,
  ``NOT_OWNER`` redirects, hedged failover reads);
* :mod:`repro.service.cluster` — multi-daemon shard ownership: epoch-
  stamped file leases, heartbeat failure detection, journal handoff and
  epoch fencing (:class:`ClusterNode`);
* :mod:`repro.service.chaos` — the deterministic two-daemon chaos
  harness behind ``hdpsr chaos``;
* :mod:`repro.service.telemetry` — the live scrape surface: the ``stats``
  snapshot builder and the HTTP ``/metrics`` + ``/healthz`` listener.
"""

from repro.service.admission import DiskGate
from repro.service.client import (
    BackoffPolicy,
    CircuitBreaker,
    ClusterClient,
    ServiceClient,
    ServiceError,
    run_workload,
)
from repro.service.cluster import (
    ClusterClock,
    ClusterConfig,
    ClusterNode,
    HashRing,
    LeaseRecord,
    LeaseStore,
)
from repro.service.netserver import ServiceDaemon
from repro.service.service import (
    RepairService,
    RepairTicket,
    ServiceConfig,
    ServiceRepairResult,
)
from repro.service.sharding import AsyncShardWriter
from repro.service.telemetry import TelemetryServer, stats_snapshot

__all__ = [
    "AsyncShardWriter",
    "BackoffPolicy",
    "CircuitBreaker",
    "ClusterClient",
    "ClusterClock",
    "ClusterConfig",
    "ClusterNode",
    "DiskGate",
    "HashRing",
    "LeaseRecord",
    "LeaseStore",
    "RepairService",
    "RepairTicket",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceError",
    "ServiceRepairResult",
    "TelemetryServer",
    "run_workload",
    "stats_snapshot",
]
