"""``repro.service`` — the asyncio sharded repair service.

The subsystems below turn the library's single-threaded repair pipeline
into a long-running service that overlaps many repairs and keeps serving
client reads while disks rebuild:

* :mod:`repro.service.admission` — per-disk read-concurrency gates with
  foreground-over-background priority;
* :mod:`repro.service.sharding` — the bounded, batching async writer in
  front of a :class:`~repro.hdss.store.ShardedChunkStore`;
* :mod:`repro.service.service` — :class:`RepairService`: the repair
  supervisor plus the ``submit_repair`` / ``read_chunk`` front door;
* :mod:`repro.service.protocol` — JSON-lines wire protocol (with
  request-scoped trace propagation);
* :mod:`repro.service.netserver` / :mod:`repro.service.client` — the
  ``hdpsr serve`` daemon and ``hdpsr client`` workload driver;
* :mod:`repro.service.telemetry` — the live scrape surface: the ``stats``
  snapshot builder and the HTTP ``/metrics`` + ``/healthz`` listener.
"""

from repro.service.admission import DiskGate
from repro.service.client import ServiceClient, ServiceError, run_workload
from repro.service.netserver import ServiceDaemon
from repro.service.service import (
    RepairService,
    RepairTicket,
    ServiceConfig,
    ServiceRepairResult,
)
from repro.service.sharding import AsyncShardWriter
from repro.service.telemetry import TelemetryServer, stats_snapshot

__all__ = [
    "AsyncShardWriter",
    "DiskGate",
    "RepairService",
    "RepairTicket",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceError",
    "ServiceRepairResult",
    "TelemetryServer",
    "run_workload",
    "stats_snapshot",
]
