"""``repro.service`` — the asyncio sharded repair service.

The subsystems below turn the library's single-threaded repair pipeline
into a long-running service that overlaps many repairs and keeps serving
client reads while disks rebuild:

* :mod:`repro.service.admission` — per-disk read-concurrency gates with
  foreground-over-background priority and deadline-bounded waits;
* :mod:`repro.service.sharding` — the bounded, batching async writer in
  front of a :class:`~repro.hdss.store.ShardedChunkStore`;
* :mod:`repro.service.service` — :class:`RepairService`: the repair
  supervisor plus the ``submit_repair`` / ``read_chunk`` front door;
* :mod:`repro.service.protocol` — JSON-lines wire protocol (with
  request-scoped trace propagation, per-request deadlines, and the v4
  error taxonomy);
* :mod:`repro.service.overload` — deadline-aware admission control:
  the CoDel-style :class:`OverloadController` (healthy → browned_out →
  shedding), per-request :class:`Deadline` budgets, and the client-side
  :class:`RetryBudget` token bucket;
* :mod:`repro.service.netserver` / :mod:`repro.service.client` — the
  ``hdpsr serve`` daemon and ``hdpsr client`` workload driver (closed
  loop via :func:`run_workload`, open loop via :func:`run_open_loop`),
  plus the cluster-aware :class:`ClusterClient` (retries, circuit
  breakers, ``NOT_OWNER`` redirects, hedged failover reads, retry
  budgets and ``retry_after_ms`` back-pressure);
* :mod:`repro.service.cluster` — multi-daemon shard ownership: epoch-
  stamped file leases, heartbeat failure detection, journal handoff and
  epoch fencing (:class:`ClusterNode`);
* :mod:`repro.service.chaos` — the deterministic two-daemon chaos
  harness behind ``hdpsr chaos --scenario failover``;
* :mod:`repro.service.chaos_overload` — the flash-crowd overload
  scenario behind ``hdpsr chaos --scenario overload``;
* :mod:`repro.service.scrub` — the online scrub plane: a crash-resumable
  background :class:`Scrubber` that verifies every chunk against its
  CRC32C sidecar, quarantines silent corruption, and read-repairs it
  through the partial-stripe decode path;
* :mod:`repro.service.chaos_bitrot` — the silent-corruption scenario
  behind ``hdpsr chaos --scenario bitrot``;
* :mod:`repro.service.telemetry` — the live scrape surface: the ``stats``
  snapshot builder and the HTTP ``/metrics`` + ``/healthz`` listener.
"""

from repro.service.admission import DiskGate
from repro.service.chaos import ChaosConfig, ChaosScenario, run_chaos
from repro.service.chaos_bitrot import (
    BitrotChaosConfig,
    BitrotChaosScenario,
    run_bitrot_chaos,
)
from repro.service.chaos_overload import (
    OverloadChaosConfig,
    OverloadChaosScenario,
    run_overload_chaos,
)
from repro.service.client import (
    BackoffPolicy,
    CircuitBreaker,
    ClusterClient,
    ServiceClient,
    ServiceError,
    run_open_loop,
    run_workload,
)
from repro.service.cluster import (
    ClusterClock,
    ClusterConfig,
    ClusterNode,
    HashRing,
    LeaseRecord,
    LeaseStore,
)
from repro.service.netserver import ServiceDaemon
from repro.service.overload import (
    Deadline,
    OverloadConfig,
    OverloadController,
    RetryBudget,
)
from repro.service.service import (
    RepairService,
    RepairTicket,
    ServiceConfig,
    ServiceRepairResult,
)
from repro.service.scrub import ScrubConfig, Scrubber, ScrubStatus
from repro.service.sharding import AsyncShardWriter
from repro.service.telemetry import TelemetryServer, stats_snapshot

__all__ = [
    "AsyncShardWriter",
    "BackoffPolicy",
    "BitrotChaosConfig",
    "BitrotChaosScenario",
    "ChaosConfig",
    "ChaosScenario",
    "CircuitBreaker",
    "ClusterClient",
    "ClusterClock",
    "ClusterConfig",
    "ClusterNode",
    "Deadline",
    "DiskGate",
    "HashRing",
    "LeaseRecord",
    "LeaseStore",
    "OverloadChaosConfig",
    "OverloadChaosScenario",
    "OverloadConfig",
    "OverloadController",
    "RepairService",
    "RepairTicket",
    "RetryBudget",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDaemon",
    "ScrubConfig",
    "ScrubStatus",
    "Scrubber",
    "ServiceError",
    "ServiceRepairResult",
    "TelemetryServer",
    "run_bitrot_chaos",
    "run_chaos",
    "run_open_loop",
    "run_overload_chaos",
    "run_workload",
    "stats_snapshot",
]
