"""The ``hdpsr serve`` daemon: a :class:`RepairService` behind a socket.

:class:`ServiceDaemon` owns one :class:`~repro.service.service.RepairService`
and speaks the JSON-lines protocol of :mod:`repro.service.protocol` on a
TCP listener. Clients fail disks, submit repairs, and read chunks/objects
through the front door while repairs run.

The daemon is also the scrape plane: ``stats`` returns the structured
telemetry snapshot of :func:`~repro.service.telemetry.stats_snapshot`,
``metrics`` returns the registry as Prometheus text over the same socket,
and an optional :class:`~repro.service.telemetry.TelemetryServer` serves
the HTTP twins (``/metrics``, ``/healthz`` — readiness flips on inside
:meth:`serve_until_stopped` and off again when draining). Requests that
carry a ``trace`` context are dispatched under it, so everything a request
touches — gate waits, survivor reads, decodes, piggybacks — exports as one
connected span tree stamped with the client's ``trace_id``.

Crash semantics mirror the CLI's journaled repairs: a scripted
``process_crash`` fault kills the whole daemon — the process exits with
:data:`~repro.faults.report.EXIT_CRASHED` (4) — and restarting it with
``--resume`` replays every journaled repair byte-for-byte. A clean
``shutdown`` exits 0, or :data:`~repro.faults.report.EXIT_DATA_LOSS` (3)
when any finished repair lost stripes.

Malformed wire input is answered, not swallowed: a recoverable
:class:`~repro.service.protocol.ProtocolError` (bad JSON, non-object
payload) produces a structured error response and the connection lives on;
a *fatal* one (a frame overrunning :data:`~repro.service.protocol.MAX_REQUEST_BYTES`)
is answered once and then the daemon hangs up, because the byte stream has
lost its framing.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, Optional

from repro.errors import (
    ChunkNotFoundError,
    ChunkQuarantinedError,
    ConfigurationError,
    DeadlineExceededError,
    FencedError,
    NotOwnerError,
    OverloadError,
    ReproError,
)
from repro.faults.injector import SimulatedCrash
from repro.faults.report import EXIT_CRASHED
from repro.faults.service import ServiceFaultInjector, WireVerdict, apply_corruption
from repro.journal.journal import journal_exists, load_state
from repro.obs.context import current_registry, current_tracer, use_span
from repro.obs.exporters import prometheus_text
from repro.obs.runtime import EventLoopMonitor
from repro.obs.tracer import SpanContext
from repro.service import protocol
from repro.service.cluster import ClusterNode
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_CORRUPT,
    ERR_CRASH,
    ERR_DEADLINE,
    ERR_FENCED,
    ERR_NOT_OWNER,
    ERR_NOT_FOUND,
    ERR_OVERLOAD,
    ERR_PROTOCOL,
    MAX_REQUEST_BYTES,
)
from repro.service.overload import Deadline
from repro.service.scrub import Scrubber
from repro.service.service import RepairService, RepairTicket
from repro.service.telemetry import TelemetryServer, stats_snapshot

#: Ops a connection handler dispatches (``op`` field of each request).
OPS = (
    "ping", "stats", "metrics", "cluster", "fail_disk", "repair", "wait",
    "read", "read_object", "scrub", "shutdown",
)

#: Ops exempt from the in-flight admission cap: they are cheap, and they
#: are exactly what an operator needs while the daemon is overloaded.
UNCAPPED_OPS = ("ping", "stats", "metrics", "cluster", "scrub", "shutdown")

#: Ops that mutate shard-owned state and are therefore refused with
#: ``not_owner`` on a daemon that does not hold the target disk's lease.
#: Reads stay unrestricted — every daemon fronts the whole shared store,
#: which is what makes hedged failover reads possible during a takeover.
OWNED_OPS = ("fail_disk", "repair")


class ServiceDaemon:
    """Socket front end around one :class:`RepairService`.

    Args:
        service: the repair service to expose.
        host: listen address.
        port: listen port (0 picks an ephemeral one).
        port_file: when set, the *actual* bound port is written here once
            listening — how test harnesses find an ephemeral port.
        telemetry: optional HTTP ``/metrics`` + ``/healthz`` listener; the
            daemon starts it, flips its readiness, and stops it.
        monitor: optional event-loop lag monitor started with the daemon.
        cluster: optional :class:`~repro.service.cluster.ClusterNode`; the
            daemon runs its heartbeat loop, refuses mutations of shards it
            does not own (``not_owner`` + redirect), answers the
            ``cluster`` op, and — on claiming a dead peer's shard —
            resumes that peer's unfinished repair journals (handoff).
        chaos: optional wire-fault injector (``conn_reset``/``slow_peer``/
            ``partial_frame``/``clock_skew``/``bitrot``/``torn_write``/
            ``misdirected_write``), consulted once per request.
        max_inflight: admission cap on concurrently served requests
            (telemetry/control ops exempt); excess requests are answered
            with a retryable ``overload`` error instead of queueing
            without bound.
        scrubber: optional background :class:`~repro.service.scrub.Scrubber`;
            the daemon starts it once ready and stops it during drain, and
            the ``scrub`` op reports its cursor/progress/quarantine status.
    """

    def __init__(
        self,
        service: RepairService,
        host: str = "127.0.0.1",
        port: int = 0,
        port_file: "str | Path | None" = None,
        telemetry: Optional[TelemetryServer] = None,
        monitor: Optional[EventLoopMonitor] = None,
        cluster: Optional[ClusterNode] = None,
        chaos: Optional[ServiceFaultInjector] = None,
        max_inflight: Optional[int] = None,
        scrubber: Optional[Scrubber] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.port_file = Path(port_file) if port_file else None
        self.telemetry = telemetry
        self.monitor = monitor
        self.cluster = cluster
        self.chaos = chaos
        self.max_inflight = max_inflight
        self.scrubber = scrubber
        if cluster is not None:
            if cluster.on_claim is None:
                cluster.on_claim = self._handle_claim
            if service.fence is None:
                service.fence = cluster.check_fence
        if telemetry is not None and telemetry.refresh is None:
            # An HTTP scrape must see the same scrape-time gauges (job
            # progress, writer backlog) a `stats` call refreshes.
            telemetry.refresh = lambda: stats_snapshot(
                service, monitor, cluster, self.scrubber
            )
        self.exit_code = 0
        self.crashed: Optional[SimulatedCrash] = None
        self._stop = asyncio.Event()
        self._listener: Optional[asyncio.AbstractServer] = None
        self._results: Dict[int, dict] = {}
        self._conns: "set[asyncio.StreamWriter]" = set()
        self._inflight = 0
        self._handoffs: "list[int]" = []

    # --------------------------------------------------------------- lifecycle
    async def start(self) -> int:
        """Bind the listener; returns the actual port.

        The stream limit is the *request* cap: a client frame that overruns
        it surfaces as a fatal :class:`~repro.service.protocol.ProtocolError`
        instead of buffering without bound.
        """
        self._listener = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_REQUEST_BYTES
        )
        self.port = self._listener.sockets[0].getsockname()[1]
        if self.port_file is not None:
            self.port_file.parent.mkdir(parents=True, exist_ok=True)
            self.port_file.write_text(str(self.port))
        if self.cluster is not None and not self.cluster.config.endpoint:
            # Ephemeral ports are only known after bind; patch the (frozen)
            # config so lease records point clients at the real endpoint.
            object.__setattr__(
                self.cluster.config, "endpoint", f"{self.host}:{self.port}"
            )
        return self.port

    async def serve_until_stopped(self) -> int:
        """Serve until ``shutdown`` (or a crash); returns the exit code."""
        if self._listener is None:
            await self.start()
        if self.monitor is not None:
            self.monitor.start()
        if self.cluster is not None:
            # First tick runs inline so the daemon is an owner (and any
            # dead predecessor's journals are handed off) before readiness
            # flips; the heartbeat loop takes over from there.
            await self.cluster.tick_async()
            self.cluster.start()
        if self.telemetry is not None:
            await self.telemetry.start()  # idempotent when already bound
            self.telemetry.set_ready(True)
        if self.scrubber is not None:
            self.scrubber.start()
        await self._stop.wait()
        if self.telemetry is not None:
            self.telemetry.set_ready(False)
        if self.scrubber is not None:
            # Stop before closing the service: a mid-verify scrub read must
            # not race the store teardown, and the cursor journal's last
            # committed record is what a restart resumes from.
            await self.scrubber.stop()
        self._listener.close()
        # Unblock handlers parked in read_message: closing the transport
        # EOFs their readers (3.12's wait_closed waits for every handler).
        for writer in list(self._conns):
            writer.close()
        try:
            await asyncio.wait_for(self._listener.wait_closed(), timeout=5.0)
        except asyncio.TimeoutError:
            pass
        if self.monitor is not None:
            await self.monitor.stop()
        if self.cluster is not None:
            # A crash must NOT release leases — peers take over only after
            # the TTL, exactly like a real dead process. Clean shutdowns
            # release so successors claim immediately.
            await self.cluster.stop(release=self.crashed is None)
        if self.crashed is None:
            # Clean drain: finish queued writes before reporting.
            await self.service.close()
        if self.telemetry is not None:
            await self.telemetry.stop()
        return self.exit_code

    def _trip(self, exc: SimulatedCrash) -> None:
        """A scripted crash fired: bring the whole daemon down (exit 4)."""
        if self.crashed is None:
            self.crashed = exc
            self.exit_code = EXIT_CRASHED
        self._stop.set()

    def _watch(self, ticket: RepairTicket) -> None:
        def done(task: asyncio.Task) -> None:
            if task.cancelled():
                return
            exc = task.exception()
            if isinstance(exc, SimulatedCrash):
                self._trip(exc)

        ticket.task.add_done_callback(done)

    # ----------------------------------------------------------------- cluster
    async def _handle_claim(self, shard: int, prev_owner: Optional[str]) -> None:
        """Journal handoff: after claiming a dead peer's shard, resume its
        unfinished per-disk repair journals on this daemon.

        This is PR 4's ``--resume`` lifted across daemons: the journals
        live under the *shared* ``journal_root``, so the survivor replays
        finished stripes byte-identically from journaled payloads (skipping
        chunks the dead peer already persisted) and continues in-flight
        decodes from their last committed round.
        """
        if prev_owner is None:
            return  # initial claim of a never-owned shard: nothing to resume
        root = self.service.config.journal_root
        if root is None or self.cluster is None:
            return
        for jdir in sorted(Path(root).glob("disk-*")):
            try:
                disk = int(jdir.name.split("-", 1)[1])
            except ValueError:
                continue
            if self.cluster.shard_of_disk(disk) != shard:
                continue
            if not journal_exists(jdir):
                continue
            if any(
                t.disk == disk and not t.task.done()
                for t in self.service._tickets.values()
            ):
                continue  # already repairing this disk locally
            try:
                state = await asyncio.to_thread(load_state, jdir)
            except ReproError:
                continue  # torn/foreign journal: nothing restorable
            if state.completed:
                continue
            server = self.service.server
            if not server.disk(disk).is_failed:
                # The dead peer failed this disk; mirror that here without
                # touching the shared store (its chunks are already gone).
                server.fail_disk(disk, destroy_data=False)
            ticket = self.service.submit_repair(disk, resume=True)
            self._watch(ticket)
            self._handoffs.append(disk)
            current_registry().counter(
                "hdpsr_cluster_handoffs_total",
                "Dead peers' repair journals resumed on this daemon.",
            ).inc()

    def _require_ownership(self, disk: int) -> None:
        """Raise :class:`NotOwnerError` (with redirect info) unless this
        daemon holds the lease on ``disk``'s shard."""
        cluster = self.cluster
        if cluster is None or cluster.owns_disk(disk):
            return
        shard = cluster.shard_of_disk(disk)
        lease = cluster.owner_of_shard(shard)
        raise NotOwnerError(
            f"node {cluster.node_id} does not own shard {shard} (disk {disk})",
            shard=shard,
            owner=lease.owner if lease is not None else None,
            endpoint=lease.endpoint if lease is not None else None,
            epoch=lease.epoch if lease is not None else -1,
        )

    # -------------------------------------------------------------- connection
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(writer)
        try:
            while not self._stop.is_set():
                try:
                    msg = await protocol.read_message(
                        reader, max_bytes=MAX_REQUEST_BYTES
                    )
                except protocol.ProtocolError as exc:
                    writer.write(protocol.encode_message(
                        protocol.error(
                            str(exc), code=ERR_PROTOCOL, kind="ProtocolError"
                        )
                    ))
                    await writer.drain()
                    if exc.fatal:
                        # Framing lost: answer once, then hang up. Discard
                        # whatever the peer already sent first — closing
                        # with unread bytes buffered turns the FIN into an
                        # RST that can destroy the error reply in flight.
                        await self._discard_input(reader)
                        break
                    continue
                if msg is None:
                    break
                if self.chaos is not None:
                    verdict = self.chaos.on_request()
                    if verdict.corruptions:
                        await self._apply_corruptions(verdict)
                    if verdict.skew_seconds and self.cluster is not None:
                        self.cluster.clock.advance(verdict.skew_seconds)
                    if verdict.delay_seconds:
                        await asyncio.sleep(verdict.delay_seconds)
                    if verdict.reset:
                        # Abort, not close: the peer sees an RST mid-request,
                        # exactly what a dying daemon's kernel would send.
                        writer.transport.abort()
                        break
                    if verdict.partial:
                        reply = await self._serve_one(msg)
                        frame = protocol.encode_message(reply)
                        writer.write(frame[: max(1, len(frame) // 2)])
                        await writer.drain()
                        break  # hang up with the frame torn
                reply = await self._serve_one(msg)
                writer.write(protocol.encode_message(reply))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _discard_input(
        reader: asyncio.StreamReader, budget: float = 0.25
    ) -> None:
        """Best-effort drain of a connection we are about to abandon."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + budget
        try:
            while loop.time() < deadline:
                chunk = await asyncio.wait_for(
                    reader.read(1 << 16), timeout=0.05
                )
                if not chunk:
                    return
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError):
            return

    @staticmethod
    def _deadline_of(msg: dict) -> Optional[Deadline]:
        """The request's latency budget, stamped absolute at admission.

        ``deadline_ms`` counts from *daemon arrival*, not client send —
        the two clocks share no domain, and a budget that starts here is
        the only one both sides can reason about.
        """
        budget = msg.get("deadline_ms")
        if budget is None:
            return None
        return Deadline.from_budget_ms(float(budget))

    async def _apply_corruptions(self, verdict: WireVerdict) -> None:
        """Land the verdict's corruption events on the backing store.

        The write happens off-loop (it is file I/O) and the service is
        told the seed time, so scrub detection latency is measurable.
        Events aimed at chunks that do not exist (yet) are dropped — a
        schedule may fire before the victim stripe is written.
        """
        for event in verdict.corruptions:
            try:
                await asyncio.to_thread(
                    apply_corruption, self.service.server.store, event
                )
            except (ChunkNotFoundError, ConfigurationError):
                continue
            self.service.note_corruption_seeded(
                int(event.disk), int(event.stripe), int(event.shard)
            )

    async def handle_request(self, msg: dict) -> dict:
        """Serve one already-decoded request dict (full protocol
        semantics minus TCP framing) — the front door for in-process
        harnesses like the overload and bitrot chaos scenarios, where
        thousands of open-loop requests would otherwise each need a
        socket. The wire injector is still consulted, but only verdicts
        that make sense without a socket apply: corruption and clock
        skew land, delays are honoured, resets/torn frames are ignored.
        """
        if self.chaos is not None:
            verdict = self.chaos.on_request()
            if verdict.corruptions:
                await self._apply_corruptions(verdict)
            if verdict.skew_seconds and self.cluster is not None:
                self.cluster.clock.advance(verdict.skew_seconds)
            if verdict.delay_seconds:
                await asyncio.sleep(verdict.delay_seconds)
        return await self._serve_one(msg)

    async def _serve_one(self, msg: dict) -> dict:
        """Dispatch one request under its (optional) propagated trace."""
        ctx = SpanContext.from_wire(msg.get("trace"))
        op = msg.get("op")
        if (
            self.max_inflight is not None
            and op not in UNCAPPED_OPS
            and self._inflight >= self.max_inflight
        ):
            reply = protocol.error(
                f"daemon at capacity ({self.max_inflight} requests in flight)",
                code=ERR_OVERLOAD,
                retry_after_ms=(
                    self.service.overload.retry_after_ms()
                    if self.service.overload is not None
                    else 50.0
                ),
            )
            if ctx is not None:
                reply.setdefault("trace_id", ctx.trace_id)
            return reply
        self._inflight += 1
        try:
            if ctx is not None:
                with use_span(ctx):
                    tracer = current_tracer()
                    if tracer.enabled:
                        with tracer.span(
                            "request", f"op:{op}", track="daemon", op=str(op)
                        ):
                            reply = await self._dispatch(msg)
                    else:
                        reply = await self._dispatch(msg)
            else:
                reply = await self._dispatch(msg)
        except SimulatedCrash as exc:
            self._trip(exc)
            reply = protocol.error("service crashed", code=ERR_CRASH)
        except NotOwnerError as exc:
            reply = protocol.error(
                str(exc), code=ERR_NOT_OWNER, kind="NotOwnerError",
                shard=exc.shard, owner=exc.owner, endpoint=exc.endpoint,
                epoch=exc.epoch,
            )
        except FencedError as exc:
            reply = protocol.error(
                str(exc), code=ERR_FENCED, kind="FencedError",
                shard=exc.shard, held_epoch=exc.held_epoch,
                current_epoch=exc.current_epoch,
            )
        except DeadlineExceededError as exc:
            if self.service.overload is not None:
                self.service.overload.note_deadline_expired()
            reply = protocol.error(
                str(exc), code=ERR_DEADLINE, kind="DeadlineExceededError",
                hop=exc.hop,
                overshoot_ms=round(exc.overshoot_seconds * 1e3, 3),
            )
        except OverloadError as exc:
            reply = protocol.error(
                str(exc), code=ERR_OVERLOAD, kind="OverloadError",
                work_class=exc.work_class,
                retry_after_ms=exc.retry_after_ms,
            )
        except ChunkQuarantinedError as exc:
            reply = protocol.error(
                str(exc), code=ERR_CORRUPT, kind="ChunkQuarantinedError",
                disk=exc.disk, stripe=exc.stripe, shard=exc.shard,
            )
        except ChunkNotFoundError as exc:
            reply = protocol.error(
                str(exc), code=ERR_NOT_FOUND, kind=type(exc).__name__
            )
        except ConfigurationError as exc:
            reply = protocol.error(
                str(exc), code=ERR_BAD_REQUEST, kind=type(exc).__name__
            )
        except ReproError as exc:
            reply = protocol.error(str(exc), kind=type(exc).__name__)
        except (KeyError, TypeError, ValueError) as exc:
            # Well-formed JSON, ill-formed request (missing/mistyped
            # fields): answer structurally instead of killing the handler.
            reply = protocol.error(
                f"bad request for op {op!r}: {exc!r}",
                code=ERR_BAD_REQUEST, kind=type(exc).__name__,
            )
        finally:
            self._inflight -= 1
        if ctx is not None:
            reply.setdefault("trace_id", ctx.trace_id)
        return reply

    async def _dispatch(self, msg: dict) -> dict:
        op = msg.get("op")
        service = self.service
        server = service.server

        if op == "ping":
            extra = {}
            if self.cluster is not None:
                extra["node"] = self.cluster.node_id
                extra["endpoint"] = self.cluster.config.endpoint
                extra["owned_shards"] = self.cluster.owned_shards
            return protocol.ok(
                version=protocol.PROTOCOL_VERSION,
                num_stripes=len(server.layout),
                n=server.config.n,
                k=server.config.k,
                num_disks=server.config.num_disks,
                spares=server.config.spares,
                failed=server.failed_disks(),
                **extra,
            )
        if op == "stats":
            return protocol.ok(
                **stats_snapshot(
                    service, self.monitor, self.cluster, self.scrubber
                )
            )
        if op == "metrics":
            return protocol.ok(metrics_text=prometheus_text(current_registry()))
        if op == "cluster":
            if self.cluster is None:
                return protocol.ok(enabled=False)
            return protocol.ok(
                enabled=True,
                handoffs=list(self._handoffs),
                **self.cluster.status(),
            )
        if op == "fail_disk":
            disk = int(msg["disk"])
            self._require_ownership(disk)
            server.fail_disk(disk)
            return protocol.ok(disk=disk, failed=server.failed_disks())
        if op == "repair":
            disk = int(msg["disk"])
            self._require_ownership(disk)
            ticket = service.submit_repair(
                disk, resume=bool(msg.get("resume", False))
            )
            self._watch(ticket)
            return protocol.ok(job_id=ticket.job_id, disk=ticket.disk)
        if op == "wait":
            job_id = int(msg["job_id"])
            if job_id in self._results:
                return protocol.ok(**self._results[job_id])
            ticket = service.ticket(job_id)
            result = await asyncio.shield(ticket.task)
            self._results[job_id] = result.summary()
            return protocol.ok(**self._results[job_id])
        if op == "read":
            data = await service.read_chunk(
                int(msg["stripe"]), int(msg["shard"]),
                deadline=self._deadline_of(msg),
            )
            return protocol.ok(data_b64=protocol.pack_bytes(data.tobytes()))
        if op == "read_object":
            payload = await service.read_object(
                int(msg["stripe"]), deadline=self._deadline_of(msg)
            )
            return protocol.ok(data_b64=protocol.pack_bytes(payload))
        if op == "scrub":
            if self.scrubber is None:
                return protocol.ok(enabled=False)
            return protocol.ok(enabled=True, **self.scrubber.status().to_dict())
        if op == "shutdown":
            for ticket in service._tickets.values():
                if ticket.done and not ticket.task.cancelled():
                    exc = ticket.task.exception()
                    if exc is None:
                        self.exit_code = max(
                            self.exit_code, ticket.task.result().exit_code
                        )
            self._stop.set()
            return protocol.ok(exit_code=self.exit_code)
        return protocol.error(
            f"unknown op {op!r}", code=ERR_BAD_REQUEST, kind="UnknownOp"
        )
