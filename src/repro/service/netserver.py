"""The ``hdpsr serve`` daemon: a :class:`RepairService` behind a socket.

:class:`ServiceDaemon` owns one :class:`~repro.service.service.RepairService`
and speaks the JSON-lines protocol of :mod:`repro.service.protocol` on a
TCP listener. Clients fail disks, submit repairs, and read chunks/objects
through the front door while repairs run.

Crash semantics mirror the CLI's journaled repairs: a scripted
``process_crash`` fault kills the whole daemon — the process exits with
:data:`~repro.faults.report.EXIT_CRASHED` (4) — and restarting it with
``--resume`` replays every journaled repair byte-for-byte. A clean
``shutdown`` exits 0, or :data:`~repro.faults.report.EXIT_DATA_LOSS` (3)
when any finished repair lost stripes.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, Optional

from repro.errors import ReproError
from repro.faults.injector import SimulatedCrash
from repro.faults.report import EXIT_CRASHED
from repro.service import protocol
from repro.service.protocol import MAX_MESSAGE_BYTES
from repro.service.service import RepairService, RepairTicket

#: Ops a connection handler dispatches (``op`` field of each request).
OPS = ("ping", "stats", "fail_disk", "repair", "wait", "read", "read_object", "shutdown")


class ServiceDaemon:
    """Socket front end around one :class:`RepairService`.

    Args:
        service: the repair service to expose.
        host: listen address.
        port: listen port (0 picks an ephemeral one).
        port_file: when set, the *actual* bound port is written here once
            listening — how test harnesses find an ephemeral port.
    """

    def __init__(
        self,
        service: RepairService,
        host: str = "127.0.0.1",
        port: int = 0,
        port_file: "str | Path | None" = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.port_file = Path(port_file) if port_file else None
        self.exit_code = 0
        self.crashed: Optional[SimulatedCrash] = None
        self._stop = asyncio.Event()
        self._listener: Optional[asyncio.AbstractServer] = None
        self._results: Dict[int, dict] = {}
        self._conns: "set[asyncio.StreamWriter]" = set()

    # --------------------------------------------------------------- lifecycle
    async def start(self) -> int:
        """Bind the listener; returns the actual port."""
        self._listener = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_MESSAGE_BYTES
        )
        self.port = self._listener.sockets[0].getsockname()[1]
        if self.port_file is not None:
            self.port_file.parent.mkdir(parents=True, exist_ok=True)
            self.port_file.write_text(str(self.port))
        return self.port

    async def serve_until_stopped(self) -> int:
        """Serve until ``shutdown`` (or a crash); returns the exit code."""
        if self._listener is None:
            await self.start()
        await self._stop.wait()
        self._listener.close()
        # Unblock handlers parked in read_message: closing the transport
        # EOFs their readers (3.12's wait_closed waits for every handler).
        for writer in list(self._conns):
            writer.close()
        try:
            await asyncio.wait_for(self._listener.wait_closed(), timeout=5.0)
        except asyncio.TimeoutError:
            pass
        if self.crashed is None:
            # Clean drain: finish queued writes before reporting.
            await self.service.close()
        return self.exit_code

    def _trip(self, exc: SimulatedCrash) -> None:
        """A scripted crash fired: bring the whole daemon down (exit 4)."""
        if self.crashed is None:
            self.crashed = exc
            self.exit_code = EXIT_CRASHED
        self._stop.set()

    def _watch(self, ticket: RepairTicket) -> None:
        def done(task: asyncio.Task) -> None:
            if task.cancelled():
                return
            exc = task.exception()
            if isinstance(exc, SimulatedCrash):
                self._trip(exc)

        ticket.task.add_done_callback(done)

    # -------------------------------------------------------------- connection
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(writer)
        try:
            while not self._stop.is_set():
                msg = await protocol.read_message(reader)
                if msg is None:
                    break
                try:
                    reply = await self._dispatch(msg)
                except SimulatedCrash as exc:
                    self._trip(exc)
                    reply = protocol.error("service crashed", crashed=True)
                except ReproError as exc:
                    reply = protocol.error(str(exc), kind=type(exc).__name__)
                writer.write(protocol.encode_message(reply))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, msg: dict) -> dict:
        op = msg.get("op")
        service = self.service
        server = service.server

        if op == "ping":
            return protocol.ok(
                version=protocol.PROTOCOL_VERSION,
                num_stripes=len(server.layout),
                n=server.config.n,
                k=server.config.k,
                num_disks=server.config.num_disks,
                spares=server.config.spares,
                failed=server.failed_disks(),
            )
        if op == "stats":
            return protocol.ok(
                modeled_now=service.modeled_now,
                chunks_enqueued=service.writer.chunks_enqueued,
                tickets=[
                    {"job_id": t.job_id, "disk": t.disk, "done": t.done}
                    for t in service._tickets.values()
                ],
                failed=server.failed_disks(),
            )
        if op == "fail_disk":
            disk = int(msg["disk"])
            server.fail_disk(disk)
            return protocol.ok(disk=disk, failed=server.failed_disks())
        if op == "repair":
            ticket = service.submit_repair(
                int(msg["disk"]), resume=bool(msg.get("resume", False))
            )
            self._watch(ticket)
            return protocol.ok(job_id=ticket.job_id, disk=ticket.disk)
        if op == "wait":
            job_id = int(msg["job_id"])
            if job_id in self._results:
                return protocol.ok(**self._results[job_id])
            ticket = service.ticket(job_id)
            result = await asyncio.shield(ticket.task)
            self._results[job_id] = result.summary()
            return protocol.ok(**self._results[job_id])
        if op == "read":
            data = await service.read_chunk(int(msg["stripe"]), int(msg["shard"]))
            return protocol.ok(data_b64=protocol.pack_bytes(data.tobytes()))
        if op == "read_object":
            payload = await service.read_object(int(msg["stripe"]))
            return protocol.ok(data_b64=protocol.pack_bytes(payload))
        if op == "shutdown":
            for ticket in service._tickets.values():
                if ticket.done and not ticket.task.cancelled():
                    exc = ticket.task.exception()
                    if exc is None:
                        self.exit_code = max(
                            self.exit_code, ticket.task.result().exit_code
                        )
            self._stop.set()
            return protocol.ok(exit_code=self.exit_code)
        return protocol.error(f"unknown op {op!r}")
