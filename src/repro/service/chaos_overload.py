"""Flash-crowd chaos: an open-loop stampede against a repairing daemon.

This is the scenario behind ``hdpsr chaos --scenario overload``, and the
proof the overload controller exists to earn. One :class:`ServiceDaemon`
(driven in-process through
:meth:`~repro.service.netserver.ServiceDaemon.handle_request` — full
protocol semantics, no TCP framing, so a thousand-request open-loop flood
doesn't need a thousand sockets) fronts a store whose reads cost a real,
fixed service time. The episode:

1. Fail one disk and submit its repair; repair reads now compete with the
   front door on every surviving spindle.
2. Replay a :func:`~repro.workloads.arrivals.flash_crowd_arrivals`
   schedule against a single hot chunk: a steady base rate, then a
   ``spike_factor`` step that pushes offered load well past the hot
   disk's service capacity, then quiet. Open loop — arrivals fire at
   their scheduled instants regardless of completions, and latency is
   measured from the *scheduled* arrival (no coordinated omission).
3. With the controller enabled (``control=True``), assert the contract:
   the daemon enters brownout/shedding during the spike, sheds at least
   one request with a ``retry_after_ms`` hint on the wire, keeps
   successful-read p99 under ``p99_budget``, keeps spike goodput at
   ``goodput_floor`` of the pre-spike level, finishes the repair with
   every object byte-identical, and returns to ``healthy``.
4. With the controller disabled (``control=False``, the negative
   control), the same schedule must *violate* the p99 budget — the
   standing queue the controller would have refused instead grows for
   the whole spike — which is what proves the bounded tail above is the
   controller's doing and not a gift of the workload.

Determinism: the arrival schedule and read targets are seeded, the
service time is fixed, and every assertion carries wide margins over the
queueing-theory expectation, so the episode replays stably under CI
jitter.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.core import ALGORITHMS
from repro.ec.stripe import ChunkId
from repro.errors import ConfigurationError
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.hdss.store import ChunkStore, InMemoryChunkStore
from repro.obs.context import current_registry
from repro.obs.quantiles import QuantileSketch
from repro.service.netserver import ServiceDaemon
from repro.service.overload import (
    STATE_HEALTHY,
    _STATE_LEVEL,
    OverloadConfig,
)
from repro.service.protocol import ERR_DEADLINE, ERR_OVERLOAD
from repro.service.service import RepairService, ServiceConfig
from repro.workloads.arrivals import flash_crowd_arrivals

__all__ = ["OverloadChaosConfig", "OverloadChaosScenario", "run_overload_chaos"]


class SlowStore(ChunkStore):
    """Delegating store whose reads cost a fixed wall-clock service time.

    The disk-physics stand-in the scenario queues against: each ``get``
    sleeps ``service_time_s`` (inside the caller's ``to_thread``), so a
    gate of width ``w`` gives each disk a real capacity of
    ``w / service_time_s`` reads per second — and offered load beyond it
    builds a real standing queue with real waits for the controller to
    measure.
    """

    def __init__(self, inner: ChunkStore, service_time_s: float) -> None:
        self.inner = inner
        self.service_time_s = service_time_s
        self.reads = 0

    def get(self, disk_id: int, chunk_id: ChunkId) -> np.ndarray:
        self.reads += 1
        time.sleep(self.service_time_s)
        return self.inner.get(disk_id, chunk_id)

    # ------------------------------------------------------------ delegation
    def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        self.inner.put(disk_id, chunk_id, data)

    def put_many(self, items) -> None:
        self.inner.put_many(items)

    def get_many(self, keys):
        return [self.get(d, c) for d, c in keys]

    def delete(self, disk_id: int, chunk_id: ChunkId) -> None:
        self.inner.delete(disk_id, chunk_id)

    def contains(self, disk_id: int, chunk_id: ChunkId) -> bool:
        return self.inner.contains(disk_id, chunk_id)

    def chunks_on_disk(self, disk_id: int) -> List[ChunkId]:
        return self.inner.chunks_on_disk(disk_id)

    def drop_disk(self, disk_id: int) -> int:
        return self.inner.drop_disk(disk_id)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


@dataclass(frozen=True)
class OverloadChaosConfig:
    """Knobs of one flash-crowd episode.

    The defaults put the hot disk's capacity at ``1 / service_time_s``
    = 500 reads/s (gate width 1): the base rate loads it to ~16%, the
    spike offers ~3.2× capacity, so without control the standing queue
    grows for the whole spike and the tail explodes — while with control
    the deadline + shed path keeps waits near ``deadline_ms``.

    Attributes:
        control: run with the overload controller + client deadlines
            (the treatment) or with neither (the negative control).
        root: optional scratch dir for the repair journal (None = no
            journal; the scenario's byte-identity check doesn't need one).
        p99_budget: wall bound asserted on successful-read p99 (treatment)
            and asserted *violated* without control.
        goodput_floor: spike goodput must stay at this fraction of the
            pre-spike goodput (treatment only).
    """

    control: bool = True
    root: "str | Path | None" = None
    num_disks: int = 12
    n: int = 5
    k: int = 3
    chunk_size: int = 2048
    memory_chunks: int = 16
    spares: int = 3
    seed: int = 11
    stripes: int = 12
    failed_disk: int = 3
    algorithm: str = "hd-psr-ap"
    service_time_s: float = 0.002
    gate_width: int = 1
    base_rate: float = 80.0
    spike_factor: float = 10.0
    pre_seconds: float = 1.0
    spike_seconds: float = 1.0
    post_seconds: float = 0.5
    deadline_ms: float = 100.0
    p99_budget: float = 0.3
    goodput_floor: float = 0.8
    overload: Optional[OverloadConfig] = None
    deadline: float = 60.0

    def __post_init__(self) -> None:
        if self.service_time_s <= 0:
            raise ConfigurationError(
                f"service_time_s must be > 0, got {self.service_time_s}"
            )
        if not 0 < self.goodput_floor <= 1:
            raise ConfigurationError(
                f"goodput_floor must be in (0, 1], got {self.goodput_floor}"
            )
        if self.p99_budget <= 0:
            raise ConfigurationError(
                f"p99_budget must be > 0, got {self.p99_budget}"
            )


class OverloadChaosScenario:
    """One seeded flash-crowd episode; :meth:`run` returns the report."""

    def __init__(self, config: OverloadChaosConfig) -> None:
        self.config = config
        self.failures: List[str] = []

    def _fail(self, message: str) -> None:
        self.failures.append(message)

    # ------------------------------------------------------------- assembly
    def _build(self):
        c = self.config
        store = SlowStore(InMemoryChunkStore(), c.service_time_s)
        server = HighDensityStorageServer(
            HDSSConfig(
                num_disks=c.num_disks, n=c.n, k=c.k, chunk_size=c.chunk_size,
                memory_chunks=c.memory_chunks, spares=c.spares, seed=c.seed,
                placement="rotating",
            ),
            store=store,
        )
        server.provision_stripes(c.stripes, with_data=True)
        overload = None
        if c.control:
            overload = c.overload or OverloadConfig(
                # Interval well under the spike so brownout is detected
                # within it; targets sized to the 2 ms service time.
                target_ms=5.0, shed_target_ms=30.0, interval_ms=50.0,
                recovery_intervals=2, repair_pace_ms=10.0,
                queue_cap=48, idle_reset_s=1.0,
            )
        service = RepairService(
            server,
            ALGORITHMS[c.algorithm](),
            ServiceConfig(
                max_concurrent_stripes=2,
                per_disk_reads=c.gate_width,
                journal_root=(
                    Path(c.root) / "journal" if c.root is not None else None
                ),
                durable_journal=False,
                overload=overload,
            ),
        )
        daemon = ServiceDaemon(service)
        return store, server, service, daemon

    def _hot_target(self, server: HighDensityStorageServer) -> "tuple[int, int]":
        """A (stripe, shard) whose disk survives the failure — every flood
        read lands here, concentrating the stampede on one spindle."""
        c = self.config
        for si in range(len(server.layout)):
            stripe = server.layout[si]
            for shard in range(stripe.k):
                if stripe.disks[shard] != c.failed_disk:
                    return si, shard
        raise ConfigurationError("no surviving shard to target")

    # ------------------------------------------------------------------ run
    async def run(self) -> dict:
        c = self.config
        hard_deadline = time.monotonic() + c.deadline
        store, server, service, daemon = self._build()
        originals = {
            si: server.read_object(si) for si in range(len(server.layout))
        }
        hot_stripe, hot_shard = self._hot_target(server)
        hot_disk = server.layout[hot_stripe].disks[hot_shard]
        duration = c.pre_seconds + c.spike_seconds + c.post_seconds
        schedule = flash_crowd_arrivals(
            c.base_rate, duration,
            spike_factor=c.spike_factor,
            spike_start=c.pre_seconds,
            spike_duration=c.spike_seconds,
            seed=c.seed,
        )

        report: dict = {
            "control": c.control,
            "seed": c.seed,
            "hot_target": [hot_stripe, hot_shard],
            "hot_disk": hot_disk,
            "offered": schedule.count,
            "offered_rate": round(schedule.mean_rate, 3),
            "hot_capacity_per_s": round(c.gate_width / c.service_time_s, 1),
            "shape": schedule.params,
        }

        # 1. Fail the disk and start its repair under the daemon.
        reply = await daemon.handle_request({"op": "fail_disk", "disk": c.failed_disk})
        if not reply.get("ok"):
            self._fail(f"fail_disk refused: {reply}")
        reply = await daemon.handle_request({"op": "repair", "disk": c.failed_disk})
        job_id = reply.get("job_id")
        if not reply.get("ok"):
            self._fail(f"repair refused: {reply}")

        # 2. The open-loop flood, plus a state sampler watching brownout.
        latencies = QuantileSketch((0.5, 0.9, 0.99))
        errors: Dict[str, int] = {}
        shed_example: Optional[dict] = None
        completed_at: List[float] = []  # scheduled offsets of successes
        max_level = 0
        states_seen = {STATE_HEALTHY}

        async def sample_states(stop: asyncio.Event) -> None:
            nonlocal max_level
            while not stop.is_set():
                if service.overload is not None:
                    state = service.overload.state
                    states_seen.add(state)
                    max_level = max(max_level, _STATE_LEVEL[state])
                await asyncio.sleep(0.01)

        async def fire(offset: float) -> None:
            nonlocal shed_example
            msg = {"op": "read", "stripe": hot_stripe, "shard": hot_shard}
            if c.control:
                msg["deadline_ms"] = c.deadline_ms
            t0 = time.monotonic()
            reply = await daemon.handle_request(msg)
            if reply.get("ok"):
                latencies.observe(time.monotonic() - t0)
                completed_at.append(offset)
            else:
                code = str(reply.get("code", "unknown"))
                errors[code] = errors.get(code, 0) + 1
                if code == ERR_OVERLOAD and "retry_after_ms" in reply:
                    shed_example = shed_example or dict(reply)

        stop_sampler = asyncio.Event()
        sampler = asyncio.create_task(sample_states(stop_sampler))
        started = time.monotonic()
        tasks: List[asyncio.Task] = []
        for offset in schedule.times:
            delay = started + float(offset) - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.create_task(fire(float(offset))))
        await asyncio.gather(*tasks)

        # 3. Repair must finish (possibly stalled behind foreground
        # priority during the spike) and certify clean.
        repair_summary: dict = {}
        if job_id is not None:
            budget = max(1.0, hard_deadline - time.monotonic())
            try:
                reply = await asyncio.wait_for(
                    daemon.handle_request({"op": "wait", "job_id": job_id}),
                    timeout=budget,
                )
            except asyncio.TimeoutError:
                self._fail(f"repair did not finish within {budget:.0f}s")
            else:
                repair_summary = {
                    k: v for k, v in reply.items() if k not in ("ok", "trace_id")
                }
                if not reply.get("certified", False):
                    self._fail("repair did not certify clean under the flood")
        stop_sampler.set()
        await sampler
        await service.close()

        # ------------------------------------------------------- the ledger
        q = latencies.quantiles() if latencies.count else {}
        p99 = q.get(0.99)
        pre = [t for t in completed_at if t < c.pre_seconds]
        spike = [
            t for t in completed_at
            if c.pre_seconds <= t < c.pre_seconds + c.spike_seconds
        ]
        goodput_pre = len(pre) / c.pre_seconds
        goodput_spike = len(spike) / c.spike_seconds
        snapshot = (
            service.overload.snapshot() if service.overload is not None else {}
        )
        report.update({
            "completed": latencies.count,
            "errors": dict(errors),
            "sheds": errors.get(ERR_OVERLOAD, 0),
            "deadline_expired": errors.get(ERR_DEADLINE, 0),
            "read_p50_seconds": q.get(0.5),
            "read_p99_seconds": p99,
            "p99_budget": c.p99_budget,
            "p99_violated": bool(p99 is not None and p99 > c.p99_budget),
            "goodput_pre_per_s": round(goodput_pre, 1),
            "goodput_spike_per_s": round(goodput_spike, 1),
            "states_seen": sorted(states_seen, key=_STATE_LEVEL.get),
            "max_state_level": max_level,
            "shed_example": shed_example,
            "overload": snapshot,
            "repair": repair_summary,
        })

        # 4. Byte identity: every object — including the repaired disk's
        # rebuilt chunks on their spares — reads back exactly as written.
        mismatched = []
        for si, want in originals.items():
            try:
                got = server.read_object(si)
            except Exception as exc:  # noqa: BLE001 - recorded as mismatch
                mismatched.append((si, repr(exc)))
                continue
            if got != want:
                mismatched.append((si, "bytes differ"))
        report["byte_identical"] = not mismatched
        if mismatched:
            self._fail(f"objects not byte-identical after repair: {mismatched}")

        if c.control:
            self._assert_treatment(report, service, hard_deadline)
        # The negative control asserts nothing about its own tail here:
        # the *caller* (test/CI) asserts report["p99_violated"] is True,
        # keeping this run's pass/fail about integrity only.

        report["failures"] = list(self.failures)
        report["passed"] = not self.failures
        current_registry().counter(
            "hdpsr_chaos_runs_total", "Chaos scenarios executed.",
        ).labels(outcome="pass" if report["passed"] else "fail").inc()
        return report

    def _assert_treatment(
        self, report: dict, service: RepairService, hard_deadline: float
    ) -> None:
        """The overload-control contract, asserted with control enabled."""
        c = self.config
        if report["max_state_level"] < 1:
            self._fail(
                "daemon never left healthy under a "
                f"{c.spike_factor}x flash crowd"
            )
        total_sheds = report["sheds"] + report["deadline_expired"]
        if not total_sheds:
            self._fail("controller shed nothing during the spike")
        if report["sheds"] and not report["shed_example"]:
            self._fail("overload refusals carried no retry_after_ms hint")
        p99 = report["read_p99_seconds"]
        if p99 is None:
            self._fail("no successful reads to measure p99 on")
        elif p99 > c.p99_budget:
            self._fail(
                f"p99 {p99:.3f}s exceeded the {c.p99_budget}s budget "
                "with control enabled"
            )
        floor = c.goodput_floor * report["goodput_pre_per_s"]
        if report["goodput_spike_per_s"] < floor:
            self._fail(
                f"spike goodput {report['goodput_spike_per_s']}/s fell below "
                f"{c.goodput_floor:.0%} of pre-spike "
                f"({report['goodput_pre_per_s']}/s)"
            )
        # Clean recovery: with the flood gone, windows go clean (or idle-
        # expire) and the daemon must walk back to healthy.
        budget = max(1.0, hard_deadline - time.monotonic())
        waited = 0.0
        while service.overload.state != STATE_HEALTHY and waited < budget:
            time.sleep(0.05)
            waited += 0.05
        report["recovered_healthy"] = service.overload.state == STATE_HEALTHY
        report["recovery_wait_seconds"] = round(waited, 2)
        if not report["recovered_healthy"]:
            self._fail(f"daemon stuck in {service.overload.state} after the flood")


def run_overload_chaos(config: OverloadChaosConfig) -> dict:
    """Synchronous front door for the CLI/CI: run one flash-crowd episode."""
    return asyncio.run(OverloadChaosScenario(config).run())
